#include "cache/store_broker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/gcache.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "kvstore/mem_kv_store.h"
#include "server/ips_instance.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;

ProfileData MakeProfile(FeatureId fid) {
  ProfileData profile(kMinute);
  profile.Add(kMinute, 1, 1, fid, CountVector{1}).ok();
  return profile;
}

// Blocks the store callback until the test opens the gate, and lets the test
// wait until the callback has actually entered (i.e. the write is on the
// wire), so piggyback-vs-requeue ordering is deterministic.
struct StoreGate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool open = false;

  void Enter() {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
};

// Polls (wall clock) until pred holds; fails the test after ~5s.
template <typename Pred>
::testing::AssertionResult Eventually(Pred pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return ::testing::AssertionFailure() << "condition not reached within 5s";
}

// Records each dispatched chunk's pids AND snapshot pointers, so tests can
// assert which epoch's bytes rode which round trip.
struct StoreRecorder {
  std::atomic<int> calls{0};
  std::mutex mu;
  std::vector<std::vector<ProfileId>> batches;
  std::vector<std::vector<const ProfileData*>> profile_batches;
};

BrokerStoreFn CountingStore(StoreRecorder* rec, StoreGate* gate = nullptr) {
  return [rec, gate](const std::vector<ProfileId>& pids,
                     const std::vector<const ProfileData*>& profiles) {
    rec->calls.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(rec->mu);
      rec->batches.push_back(pids);
      rec->profile_batches.push_back(profiles);
    }
    if (gate != nullptr) gate->Enter();
    return std::vector<Status>(pids.size(), Status::OK());
  };
}

TEST(StoreBrokerTest, SameEpochReflushPiggybacksOnInFlightWrite) {
  MetricsRegistry metrics;
  StoreRecorder rec;
  StoreGate gate;
  StoreBrokerOptions options;
  options.window_micros = 0;  // single-flight only
  StoreBroker broker(options, CountingStore(&rec, &gate),
                     SystemClock::Instance(), &metrics);

  const ProfileData snapshot = MakeProfile(1);
  std::optional<std::vector<Status>> leader_results, follower_results;
  std::thread leader([&] {
    leader_results = broker.Store({7}, {&snapshot}, {5});
  });
  gate.AwaitEntered();  // epoch-5 write is now on the wire, gate closed

  // A second flush of pid 7 with the SAME snapshot epoch: the in-flight
  // bytes are identical, so it rides the pending write instead of paying a
  // second round trip.
  std::thread follower([&] {
    follower_results = broker.Store({7}, {&snapshot}, {5});
  });
  ASSERT_TRUE(Eventually([&] {
    return metrics.GetCounter("store_broker.single_flight_hits")->Value() ==
           1;
  }));
  gate.Open();
  leader.join();
  follower.join();

  EXPECT_EQ(rec.calls.load(), 1);  // two flushes, ONE kv.store
  ASSERT_EQ(leader_results->size(), 1u);
  EXPECT_TRUE((*leader_results)[0].ok());
  ASSERT_EQ(follower_results->size(), 1u);
  EXPECT_TRUE((*follower_results)[0].ok());
  EXPECT_EQ(metrics.GetCounter("store_broker.requeued_pids")->Value(), 0);
  EXPECT_EQ(broker.InFlightCount(), 0u);
}

TEST(StoreBrokerTest, NewerEpochRequeuesBehindInFlightWrite) {
  MetricsRegistry metrics;
  StoreRecorder rec;
  StoreGate gate;
  StoreBrokerOptions options;
  options.window_micros = 0;
  StoreBroker broker(options, CountingStore(&rec, &gate),
                     SystemClock::Instance(), &metrics);

  const ProfileData old_snapshot = MakeProfile(1);
  const ProfileData new_snapshot = MakeProfile(2);
  std::optional<std::vector<Status>> leader_results, follower_results;
  std::thread leader([&] {
    leader_results = broker.Store({7}, {&old_snapshot}, {5});
  });
  gate.AwaitEntered();

  // The pid was re-dirtied while its epoch-5 store is on the wire: the
  // epoch-6 snapshot must still be written, but only AFTER the older write
  // lands (per-pid writes stay in epoch order — never concurrent).
  std::thread follower([&] {
    follower_results = broker.Store({7}, {&new_snapshot}, {6});
  });
  ASSERT_TRUE(Eventually([&] {
    return metrics.GetCounter("store_broker.requeued_pids")->Value() == 1;
  }));
  EXPECT_EQ(rec.calls.load(), 1);  // newer write not dispatched yet
  gate.Open();
  leader.join();
  follower.join();

  EXPECT_EQ(rec.calls.load(), 2);
  ASSERT_TRUE((*leader_results)[0].ok());
  ASSERT_TRUE((*follower_results)[0].ok());
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    ASSERT_EQ(rec.batches.size(), 2u);
    EXPECT_EQ(rec.batches[0], (std::vector<ProfileId>{7}));
    EXPECT_EQ(rec.batches[1], (std::vector<ProfileId>{7}));
    // The requeued round trip carried the epoch-6 snapshot, not a replay of
    // the epoch-5 bytes.
    EXPECT_EQ(rec.profile_batches[1],
              (std::vector<const ProfileData*>{&new_snapshot}));
  }
  EXPECT_EQ(metrics.GetCounter("store_broker.single_flight_hits")->Value(),
            0);
  EXPECT_EQ(broker.InFlightCount(), 0u);
}

TEST(StoreBrokerTest, PendingWindowMergeCarriesNewestSnapshot) {
  MetricsRegistry metrics;
  StoreRecorder rec;
  StoreBrokerOptions options;
  options.window_micros = 10'000'000;  // 10s: only early close can pass
  options.max_batch_pids = 2;
  StoreBroker broker(options, CountingStore(&rec),
                     SystemClock::Instance(), &metrics);

  const ProfileData v1 = MakeProfile(1);
  const ProfileData v2 = MakeProfile(2);
  const ProfileData other = MakeProfile(3);
  std::optional<std::vector<Status>> ra, rb, rc;
  std::thread a([&] { ra = broker.Store({1}, {&v1}, {1}); });
  // Pid 1 registered == the collector is already parked in its window (the
  // entry creation and collector election share one lock hold).
  ASSERT_TRUE(Eventually([&] { return broker.InFlightCount() >= 1; }));
  // Same pid, newer epoch, while the entry is still PENDING: the
  // submissions merge and the newer snapshot replaces the older one on the
  // single write. No new unique pid, so the window stays open.
  std::thread b([&] { rb = broker.Store({1}, {&v2}, {2}); });
  ASSERT_TRUE(Eventually([&] {
    return metrics.GetCounter("store_broker.single_flight_hits")->Value() ==
           1;
  }));
  // A second unique pid fills the window and closes it early.
  std::thread c([&] { rc = broker.Store({2}, {&other}, {1}); });
  a.join();
  b.join();
  c.join();

  EXPECT_EQ(rec.calls.load(), 1);
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    ASSERT_EQ(rec.batches.size(), 1u);
    ASSERT_EQ(rec.batches[0].size(), 2u);
    for (size_t i = 0; i < rec.batches[0].size(); ++i) {
      if (rec.batches[0][i] == 1) {
        EXPECT_EQ(rec.profile_batches[0][i], &v2);  // newest merged wins
      }
    }
  }
  ASSERT_TRUE((*ra)[0].ok());
  ASSERT_TRUE((*rb)[0].ok());
  ASSERT_TRUE((*rc)[0].ok());
  // Three distinct submissions rode the one chunk.
  EXPECT_EQ(metrics.GetCounter("store_broker.cross_shard_batches")->Value(),
            1);
  EXPECT_EQ(broker.InFlightCount(), 0u);
}

TEST(StoreBrokerTest, CrossShardGroupsMergeAndCloseEarly) {
  MetricsRegistry metrics;
  StoreRecorder rec;
  StoreBrokerOptions options;
  options.window_micros = 10'000'000;
  options.max_batch_pids = 3;
  StoreBroker broker(options, CountingStore(&rec),
                     SystemClock::Instance(), &metrics);

  const ProfileData p1 = MakeProfile(1);
  const ProfileData p2 = MakeProfile(2);
  const ProfileData p3 = MakeProfile(3);
  const auto start = std::chrono::steady_clock::now();
  std::optional<std::vector<Status>> ra, rb, rc;
  std::thread a([&] { ra = broker.Store({1}, {&p1}, {1}); });
  ASSERT_TRUE(Eventually([&] { return broker.InFlightCount() >= 1; }));
  std::thread b([&] { rb = broker.Store({2}, {&p2}, {1}); });
  std::thread c([&] { rc = broker.Store({3}, {&p3}, {1}); });
  a.join();
  b.join();
  c.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // Three flush groups (think: three dirty shards' passes) within the
  // window: one merged store, dispatched on the third arrival rather than
  // after the 10s window.
  EXPECT_EQ(rec.calls.load(), 1);
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    ASSERT_EQ(rec.batches.size(), 1u);
    std::vector<ProfileId> merged = rec.batches[0];
    std::sort(merged.begin(), merged.end());
    EXPECT_EQ(merged, (std::vector<ProfileId>{1, 2, 3}));
  }
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);
  ASSERT_TRUE((*ra)[0].ok());
  ASSERT_TRUE((*rb)[0].ok());
  ASSERT_TRUE((*rc)[0].ok());
  EXPECT_EQ(metrics.GetCounter("store_broker.cross_shard_batches")->Value(),
            1);
  EXPECT_EQ(broker.InFlightCount(), 0u);
}

TEST(StoreBrokerTest, PartialStoreFailureFansBackPerPid) {
  MetricsRegistry metrics;
  std::atomic<int> calls{0};
  StoreBrokerOptions options;
  options.window_micros = 10'000'000;
  options.max_batch_pids = 3;
  StoreBroker broker(
      options,
      [&](const std::vector<ProfileId>& pids,
          const std::vector<const ProfileData*>&) {
        calls.fetch_add(1);
        std::vector<Status> statuses;
        for (ProfileId pid : pids) {
          statuses.push_back(pid == 2 ? Status::Unavailable("disk full")
                                      : Status::OK());
        }
        return statuses;
      },
      SystemClock::Instance(), &metrics);

  const ProfileData p1 = MakeProfile(1);
  const ProfileData p2 = MakeProfile(2);
  const ProfileData p3 = MakeProfile(3);
  std::optional<std::vector<Status>> ra, rb;
  std::thread a([&] { ra = broker.Store({1, 2}, {&p1, &p2}, {1, 1}); });
  ASSERT_TRUE(Eventually([&] { return broker.InFlightCount() >= 2; }));
  std::thread b([&] { rb = broker.Store({3}, {&p3}, {1}); });
  a.join();
  b.join();

  // One merged round trip, but pid 2's failure reaches exactly the
  // submission that flushed pid 2 — submission B sees only its own OK, so
  // GCache's per-status requeue semantics survive the merge.
  EXPECT_EQ(calls.load(), 1);
  ASSERT_EQ(ra->size(), 2u);
  EXPECT_TRUE((*ra)[0].ok());
  EXPECT_TRUE((*ra)[1].IsUnavailable());
  ASSERT_EQ(rb->size(), 1u);
  EXPECT_TRUE((*rb)[0].ok());
  EXPECT_EQ(broker.InFlightCount(), 0u);
}

TEST(StoreBrokerTest, OversizedPendingSetSplitsIntoChunkedStores) {
  MetricsRegistry metrics;
  StoreRecorder rec;
  StoreBrokerOptions options;
  options.window_micros = 0;
  options.max_batch_pids = 2;
  StoreBroker broker(options, CountingStore(&rec),
                     SystemClock::Instance(), &metrics);

  std::vector<ProfileData> owned;
  std::vector<ProfileId> pids;
  std::vector<const ProfileData*> profiles;
  std::vector<uint64_t> epochs;
  owned.reserve(5);
  for (ProfileId pid = 1; pid <= 5; ++pid) {
    owned.push_back(MakeProfile(static_cast<FeatureId>(pid)));
    pids.push_back(pid);
    profiles.push_back(&owned.back());
    epochs.push_back(1);
  }
  std::vector<Status> results = broker.Store(pids, profiles, epochs);
  ASSERT_EQ(results.size(), 5u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << i;
  }
  // The whole pending set was claimed (no stranded entries), dispatched in
  // max_batch_pids chunks.
  EXPECT_EQ(rec.calls.load(), 3);
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    ASSERT_EQ(rec.batches.size(), 3u);
    for (const auto& batch : rec.batches) EXPECT_LE(batch.size(), 2u);
  }
  EXPECT_EQ(metrics.GetHistogram("store_broker.batch_pids")->count(), 3u);
  // One submission: chunking alone is not cross-shard merging.
  EXPECT_EQ(metrics.GetCounter("store_broker.cross_shard_batches")->Value(),
            0);
  EXPECT_EQ(broker.InFlightCount(), 0u);
}

TEST(StoreBrokerTest, ShortStoreResultListFailsSubmittersNotCrash) {
  MetricsRegistry metrics;
  StoreBrokerOptions options;
  options.window_micros = 0;
  StoreBroker broker(
      options,
      [](const std::vector<ProfileId>&,
         const std::vector<const ProfileData*>&) {
        return std::vector<Status>{};  // misbehaving store: short list
      },
      SystemClock::Instance(), &metrics);
  const ProfileData snapshot = MakeProfile(3);
  std::vector<Status> results = broker.Store({3}, {&snapshot}, {1});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_EQ(broker.InFlightCount(), 0u);
}

TEST(StoreBrokerTest, MismatchedInputsRejectedUpFront) {
  MetricsRegistry metrics;
  std::atomic<int> calls{0};
  StoreBrokerOptions options;
  StoreBroker broker(
      options,
      [&](const std::vector<ProfileId>& pids,
          const std::vector<const ProfileData*>&) {
        calls.fetch_add(1);
        return std::vector<Status>(pids.size(), Status::OK());
      },
      SystemClock::Instance(), &metrics);
  const ProfileData snapshot = MakeProfile(1);
  std::vector<Status> results = broker.Store({1, 2}, {&snapshot}, {1, 1});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].IsInvalidArgument());
  EXPECT_TRUE(results[1].IsInvalidArgument());
  EXPECT_EQ(calls.load(), 0);  // nothing reached the store
  EXPECT_EQ(broker.InFlightCount(), 0u);
}

// TSan hammer: random overlapping pids and monotonically growing epochs from
// many threads, against a slow store. Exercises merge, piggyback, requeue,
// collector handoff, and chunking concurrently; every status must resolve
// and the in-flight table must drain clean.
TEST(StoreBrokerTest, ConcurrentStormResolvesEveryPidAndDrainsClean) {
  MetricsRegistry metrics;
  StoreBrokerOptions options;
  options.window_micros = 200;
  options.max_batch_pids = 8;
  StoreBroker broker(
      options,
      [](const std::vector<ProfileId>& pids,
         const std::vector<const ProfileData*>&) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return std::vector<Status>(pids.size(), Status::OK());
      },
      SystemClock::Instance(), &metrics);

  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  constexpr ProfileId kPidSpace = 12;
  std::atomic<uint64_t> epoch_source{1};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t) * 7919 + 1);
      for (int iter = 0; iter < kIters; ++iter) {
        const size_t group = 1 + rng() % 3;
        std::vector<ProfileId> pids;
        std::vector<uint64_t> epochs;
        for (size_t g = 0; g < group && pids.size() < kPidSpace; ++g) {
          const ProfileId pid = rng() % kPidSpace;
          if (std::find(pids.begin(), pids.end(), pid) != pids.end()) {
            continue;  // GCache dirty lists never hold same-call duplicates
          }
          pids.push_back(pid);
          epochs.push_back(epoch_source.fetch_add(1));
        }
        std::vector<ProfileData> owned;
        std::vector<const ProfileData*> profiles;
        owned.reserve(pids.size());
        for (ProfileId pid : pids) {
          owned.push_back(MakeProfile(static_cast<FeatureId>(pid + 1)));
          profiles.push_back(&owned.back());
        }
        std::vector<Status> results = broker.Store(pids, profiles, epochs);
        if (results.size() != pids.size()) {
          failures.fetch_add(1);
          continue;
        }
        for (const Status& status : results) {
          if (!status.ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(broker.InFlightCount(), 0u);
  // The storm must have actually exercised the single-flight paths.
  EXPECT_GT(metrics.GetHistogram("store_broker.batch_pids")->count(), 0u);
}

TEST(StoreBrokerTest, EvictionWriteBackRoutesThroughBrokerWhenInstalled) {
  // Eviction write-backs used to bypass the broker unconditionally (they ran
  // under the entry lock and could not park in a collection window). Now the
  // victims are stored as unlocked snapshots, so with a broker installed an
  // eviction storm must ride broker batches — and with the broker ablated it
  // must fall back to the batch flusher, never silently drop the writes.
  MetricsRegistry metrics;
  StoreRecorder rec;
  StoreBrokerOptions broker_options;
  broker_options.window_micros = 0;
  StoreBroker broker(broker_options, CountingStore(&rec),
                     SystemClock::Instance(), &metrics);

  auto make_cache = [](std::atomic<int>* direct_flushes) {
    GCacheOptions options;
    options.start_background_threads = false;
    options.lru_shards = 1;
    options.dirty_shards = 1;
    options.memory_limit_bytes = 4 << 10;
    options.write_granularity_ms = kMinute;
    return std::make_unique<GCache>(
        options, SystemClock::Instance(),
        [direct_flushes](ProfileId, const ProfileData&) {
          direct_flushes->fetch_add(1);
          return Status::OK();
        },
        [](ProfileId, bool*) -> Result<ProfileData> {
          return Status::NotFound("cold");
        });
  };
  auto fill = [](GCache& cache) {
    for (ProfileId pid = 1; pid <= 40; ++pid) {
      cache
          .WithProfileMutable(pid,
                              [&](ProfileData& profile) {
                                for (int i = 0; i < 8; ++i) {
                                  profile
                                      .Add(kMinute * (i + 1), 1, 1,
                                           static_cast<FeatureId>(i + 1),
                                           CountVector{1, 2})
                                      .ok();
                                }
                              })
          .ok();
    }
  };

  std::atomic<int> direct_flushes{0};
  std::atomic<int> batch_flushes{0};
  std::unique_ptr<GCache> cache = make_cache(&direct_flushes);
  cache->set_batch_flusher(
      [&](const std::vector<ProfileId>& pids,
          const std::vector<const ProfileData*>&) {
        batch_flushes.fetch_add(1);
        return std::vector<Status>(pids.size(), Status::OK());
      });
  cache->set_store_broker(&broker);
  fill(*cache);
  ASSERT_GT(cache->MemoryBytes(), cache->options().memory_limit_bytes);
  ASSERT_GT(cache->SwapOnce(), 0u);
  // The dirty victims' write-backs all rode the broker; neither fallback
  // path saw a single call.
  EXPECT_GT(rec.calls.load(), 0);
  EXPECT_EQ(direct_flushes.load(), 0);
  EXPECT_EQ(batch_flushes.load(), 0);
  // And nothing was dropped: every pid is still resident or went out in a
  // broker batch.
  std::set<ProfileId> stored;
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    for (const auto& batch : rec.batches) {
      stored.insert(batch.begin(), batch.end());
    }
  }
  std::vector<ProfileId> resident = cache->CachedIds();
  std::set<ProfileId> covered(resident.begin(), resident.end());
  covered.insert(stored.begin(), stored.end());
  for (ProfileId pid = 1; pid <= 40; ++pid) {
    EXPECT_TRUE(covered.count(pid) == 1) << pid;
  }

  // Ablation: identical cache with NO broker — the eviction pass write-back
  // falls back to the batch flusher and the broker sees nothing.
  const int broker_calls_before = rec.calls.load();
  std::atomic<int> ablated_direct{0};
  std::atomic<int> ablated_batch{0};
  std::unique_ptr<GCache> ablated = make_cache(&ablated_direct);
  ablated->set_batch_flusher(
      [&](const std::vector<ProfileId>& pids,
          const std::vector<const ProfileData*>&) {
        ablated_batch.fetch_add(1);
        return std::vector<Status>(pids.size(), Status::OK());
      });
  fill(*ablated);
  ASSERT_GT(ablated->SwapOnce(), 0u);
  EXPECT_GT(ablated_batch.load(), 0);
  EXPECT_EQ(ablated_direct.load(), 0);  // batch flusher preempts point path
  EXPECT_EQ(rec.calls.load(), broker_calls_before);
}

// ---------------------------------------------------------------------------
// Instance-level wiring: concurrent flush passes over different dirty shards
// must merge into ONE KvStore::MultiSet round trip.

TEST(StoreBrokerInstanceTest, ConcurrentFlushPassesShareOneMultiSet) {
  MemKvStore kv;
  ManualClock clock(100 * kDay);
  IpsInstanceOptions options;
  options.start_background_threads = false;
  options.cache.start_background_threads = false;
  options.cache.write_granularity_ms = kMinute;
  options.compaction.synchronous = true;
  options.compaction.min_interval_ms = 0;
  options.isolation_enabled = false;
  options.store_broker.window_micros = 10'000'000;  // early close must fire
  options.store_broker.max_batch_pids = 2;
  TableSchema schema = DefaultTableSchema("profiles");
  schema.write_granularity_ms = kMinute;
  IpsInstance instance(options, &kv, &clock);
  ASSERT_TRUE(instance.CreateTable(schema).ok());

  // Two pids in DIFFERENT dirty shards (same sharding function as GCache),
  // so each FlushAll pass submits its own one-pid group and the merge is
  // genuinely cross-shard.
  const ProfileId pid_a = 1;
  const size_t shard_a =
      (Mix64(pid_a) >> 17) & (options.cache.dirty_shards - 1);
  ProfileId pid_b = 2;
  while (((Mix64(pid_b) >> 17) & (options.cache.dirty_shards - 1)) ==
         shard_a) {
    ++pid_b;
  }
  for (ProfileId pid : {pid_a, pid_b}) {
    ASSERT_TRUE(instance
                    .AddProfile("test", "profiles", pid,
                                clock.NowMs() - kMinute, 1, 1,
                                static_cast<FeatureId>(pid), CountVector{1})
                    .ok());
  }
  const int64_t multi_sets_before = kv.MultiSetCalls();
  const int64_t point_writes_before = kv.PointWriteCalls();

  const auto start = std::chrono::steady_clock::now();
  std::thread t1([&] { instance.FlushAll(); });
  std::thread t2([&] { instance.FlushAll(); });
  t1.join();
  t2.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // Each pass flushed one shard's group; the broker merged them into one
  // MultiSet, and the window closed on the second group's arrival rather
  // than after 10 seconds.
  EXPECT_EQ(kv.MultiSetCalls() - multi_sets_before, 1);
  EXPECT_EQ(kv.PointWriteCalls() - point_writes_before, 0);
  EXPECT_EQ(
      instance.metrics()->GetCounter("store_broker.cross_shard_batches")
          ->Value(),
      1);
  EXPECT_EQ(instance.metrics()->GetCounter("cache.flushed")->Value(), 2);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);

  // The merged write is durable: a cold instance reads both profiles back.
  // (Zero window: the reader's shutdown flush of compaction-dirtied entries
  // should not linger in a 10s collection window per shard.)
  IpsInstanceOptions cold_options = options;
  cold_options.store_broker.window_micros = 0;
  IpsInstance cold(cold_options, &kv, &clock);
  ASSERT_TRUE(cold.CreateTable(schema).ok());
  for (ProfileId pid : {pid_a, pid_b}) {
    auto result = cold.GetProfileTopK("test", "profiles", pid, 1,
                                      std::nullopt, TimeRange::Current(kDay),
                                      SortBy::kActionCount, 0, 10);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->features.size(), 1u);
    EXPECT_EQ(result->features[0].fid, static_cast<FeatureId>(pid));
  }
}

TEST(StoreBrokerInstanceTest, BrokerAblationKeepsBatchedFlushAndDurability) {
  MemKvStore kv;
  ManualClock clock(100 * kDay);
  IpsInstanceOptions options;
  options.start_background_threads = false;
  options.cache.start_background_threads = false;
  options.cache.write_granularity_ms = kMinute;
  options.compaction.synchronous = true;
  options.compaction.min_interval_ms = 0;
  options.isolation_enabled = false;
  options.enable_store_broker = false;  // ablation: no broker wired
  TableSchema schema = DefaultTableSchema("profiles");
  schema.write_granularity_ms = kMinute;
  IpsInstance instance(options, &kv, &clock);
  ASSERT_TRUE(instance.CreateTable(schema).ok());
  for (ProfileId pid = 1; pid <= 3; ++pid) {
    ASSERT_TRUE(instance
                    .AddProfile("test", "profiles", pid,
                                clock.NowMs() - kMinute, 1, 1,
                                static_cast<FeatureId>(pid), CountVector{1})
                    .ok());
  }
  const int64_t multi_sets_before = kv.MultiSetCalls();
  instance.FlushAll();

  // The direct batch-flusher path still amortizes within the pass, writes
  // are durable, and no broker metric moves.
  EXPECT_GE(kv.MultiSetCalls() - multi_sets_before, 1);
  EXPECT_EQ(instance.metrics()->GetCounter("cache.flushed")->Value(), 3);
  EXPECT_EQ(
      instance.metrics()->GetCounter("store_broker.single_flight_hits")
          ->Value(),
      0);
  EXPECT_EQ(
      instance.metrics()->GetCounter("store_broker.cross_shard_batches")
          ->Value(),
      0);
  EXPECT_EQ(instance.metrics()->GetHistogram("store_broker.batch_pids")
                ->count(),
            0u);

  IpsInstance cold(options, &kv, &clock);
  ASSERT_TRUE(cold.CreateTable(schema).ok());
  auto result = cold.GetProfileTopK("test", "profiles", 2, 1, std::nullopt,
                                    TimeRange::Current(kDay),
                                    SortBy::kActionCount, 0, 10);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].fid, 2u);
}

}  // namespace
}  // namespace ips
