#include "kvstore/mem_kv_store.h"
#include "kvstore/replicated_kv.h"

#include <chrono>
#include <string>

#include <gtest/gtest.h>

#include "common/clock.h"

namespace ips {
namespace {

TEST(MemKvStoreTest, SetGetDelete) {
  MemKvStore kv;
  EXPECT_TRUE(kv.Set("k1", "v1").ok());
  std::string value;
  ASSERT_TRUE(kv.Get("k1", &value).ok());
  EXPECT_EQ(value, "v1");
  EXPECT_TRUE(kv.Set("k1", "v2").ok());
  ASSERT_TRUE(kv.Get("k1", &value).ok());
  EXPECT_EQ(value, "v2");
  EXPECT_TRUE(kv.Delete("k1").ok());
  EXPECT_TRUE(kv.Get("k1", &value).IsNotFound());
}

TEST(MemKvStoreTest, GetMissingIsNotFound) {
  MemKvStore kv;
  std::string value;
  EXPECT_TRUE(kv.Get("missing", &value).IsNotFound());
}

TEST(MemKvStoreTest, KeyCountAndBytes) {
  MemKvStore kv;
  EXPECT_EQ(kv.KeyCount(), 0u);
  kv.Set("a", "xx").ok();
  kv.Set("b", std::string(100, 'y')).ok();
  EXPECT_EQ(kv.KeyCount(), 2u);
  EXPECT_GE(kv.TotalValueBytes(), 102u);
}

TEST(MemKvStoreTest, VersionsIncreaseMonotonically) {
  MemKvStore kv;
  kv.Set("k", "v1").ok();
  KvEntry entry;
  ASSERT_TRUE(kv.XGet("k", &entry).ok());
  const KvVersion v1 = entry.version;
  EXPECT_GE(v1, 1u);
  kv.Set("k", "v2").ok();
  ASSERT_TRUE(kv.XGet("k", &entry).ok());
  EXPECT_GT(entry.version, v1);
}

TEST(MemKvStoreTest, XSetCreateRequiresVersionZero) {
  MemKvStore kv;
  KvVersion version = 0;
  EXPECT_TRUE(kv.XSet("k", "v", 0, &version).ok());
  EXPECT_EQ(version, 1u);
  // A second create must conflict.
  EXPECT_TRUE(kv.XSet("k", "v2", 0, &version).IsAborted());
}

TEST(MemKvStoreTest, XSetDetectsStaleWriter) {
  // The Fig 14 protocol: two writers hold version 1; the slower one must be
  // rejected and reload.
  MemKvStore kv;
  KvVersion v = 0;
  ASSERT_TRUE(kv.XSet("meta", "a", 0, &v).ok());  // v=1
  KvVersion writer_a = v, writer_b = v;
  ASSERT_TRUE(kv.XSet("meta", "b", writer_a, &v).ok());  // a wins, v=2
  KvVersion unused;
  EXPECT_TRUE(kv.XSet("meta", "c", writer_b, &unused).IsAborted());
  // b reloads and retries.
  KvEntry entry;
  ASSERT_TRUE(kv.XGet("meta", &entry).ok());
  EXPECT_EQ(entry.value, "b");
  EXPECT_TRUE(kv.XSet("meta", "c", entry.version, &unused).ok());
}

TEST(MemKvStoreTest, XGetMissingIsNotFound) {
  MemKvStore kv;
  KvEntry entry;
  EXPECT_TRUE(kv.XGet("nope", &entry).IsNotFound());
}

TEST(MemKvStoreTest, DownStoreRejectsEverything) {
  MemKvStore kv;
  kv.Set("k", "v").ok();
  kv.SetDown(true);
  std::string value;
  EXPECT_TRUE(kv.Get("k", &value).IsUnavailable());
  EXPECT_TRUE(kv.Set("k", "v2").IsUnavailable());
  EXPECT_TRUE(kv.Delete("k").IsUnavailable());
  kv.SetDown(false);
  EXPECT_TRUE(kv.Get("k", &value).ok());
  EXPECT_EQ(value, "v");  // the failed Set did not land
}

TEST(MemKvStoreTest, FailureInjectionProducesUnavailable) {
  MemKvOptions options;
  options.failure_probability = 0.5;
  options.seed = 3;
  MemKvStore kv(options);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (kv.Set("k" + std::to_string(i), "v").IsUnavailable()) ++failures;
  }
  EXPECT_GT(failures, 50);
  EXPECT_LT(failures, 150);
  kv.SetFailureProbability(0.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(kv.Set("x" + std::to_string(i), "v").ok());
  }
}

TEST(MemKvStoreTest, MultiGetAlignsOutputs) {
  MemKvStore kv;
  kv.Set("a", "1").ok();
  kv.Set("c", "3").ok();
  std::vector<std::string> values;
  std::vector<Status> statuses;
  kv.MultiGet({"a", "b", "c"}, &values, &statuses);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(values[0], "1");
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ(values[2], "3");
}

TEST(MemKvStoreTest, MultiGetCountsOneBatchedCall) {
  MemKvStore kv;
  kv.Set("a", "1").ok();
  kv.Set("b", "2").ok();
  std::string value;
  kv.Get("a", &value).ok();
  KvEntry entry;
  kv.XGet("a", &entry).ok();
  std::vector<std::string> values;
  std::vector<Status> statuses;
  kv.MultiGet({"a", "b", "missing"}, &values, &statuses);
  EXPECT_EQ(kv.PointReadCalls(), 2);  // the Get + the XGet
  EXPECT_EQ(kv.MultiGetCalls(), 1);   // one batch, regardless of keys
  EXPECT_EQ(kv.MultiGetKeys(), 3);
}

TEST(MemKvStoreTest, MultiGetChargesOneRoundTripPerBatch) {
  // With a 2ms base latency, 50 point reads burn >= 100ms of simulated
  // round trips while one 50-key MultiGet burns a single one. The margin is
  // wide enough to survive a loaded test machine.
  MemKvOptions options;
  options.base_latency_us = 2000;
  MemKvStore kv(options);
  std::vector<std::string> keys;
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i);
    kv.Set(key, "v").ok();
    keys.push_back(key);
  }

  const auto sequential_start = std::chrono::steady_clock::now();
  std::string value;
  for (const auto& key : keys) {
    ASSERT_TRUE(kv.Get(key, &value).ok());
  }
  const auto sequential_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - sequential_start)
          .count();

  const auto batch_start = std::chrono::steady_clock::now();
  std::vector<std::string> values;
  std::vector<Status> statuses;
  kv.MultiGet(keys, &values, &statuses);
  const auto batch_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - batch_start)
                            .count();

  for (const auto& status : statuses) EXPECT_TRUE(status.ok());
  EXPECT_GE(sequential_us, 100'000);
  EXPECT_LT(batch_us, sequential_us / 4);
}

TEST(MemKvStoreTest, MultiGetFailsPerKeyOnInjectedFailures) {
  // Failure draws stay per key, so a batch partially succeeds the way a
  // multi-get spanning region servers does.
  MemKvOptions options;
  options.failure_probability = 0.3;
  options.seed = 7;
  MemKvStore kv(options);
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    keys.push_back(key);
  }
  kv.SetFailureProbability(0.0);
  for (const auto& key : keys) ASSERT_TRUE(kv.Set(key, "v").ok());
  kv.SetFailureProbability(0.3);

  std::vector<std::string> values;
  std::vector<Status> statuses;
  kv.MultiGet(keys, &values, &statuses);
  int ok = 0, unavailable = 0;
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (statuses[i].ok()) {
      ++ok;
      EXPECT_EQ(values[i], "v");
    } else {
      EXPECT_TRUE(statuses[i].IsUnavailable());
      ++unavailable;
    }
  }
  EXPECT_GT(ok, 80);
  EXPECT_GT(unavailable, 20);
}

TEST(MemKvStoreTest, MultiGetOnDownStoreIsAllUnavailable) {
  MemKvStore kv;
  kv.Set("a", "1").ok();
  kv.SetDown(true);
  std::vector<std::string> values;
  std::vector<Status> statuses;
  kv.MultiGet({"a", "b"}, &values, &statuses);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].IsUnavailable());
  EXPECT_TRUE(statuses[1].IsUnavailable());
}

TEST(MemKvStoreTest, MultiGetEmptyBatchIsNoop) {
  MemKvStore kv;
  std::vector<std::string> values;
  std::vector<Status> statuses;
  kv.MultiGet({}, &values, &statuses);
  EXPECT_TRUE(values.empty());
  EXPECT_TRUE(statuses.empty());
  EXPECT_EQ(kv.MultiGetCalls(), 1);
  EXPECT_EQ(kv.MultiGetKeys(), 0);
}

TEST(MemKvStoreTest, MultiSetAlignsOutputs) {
  MemKvStore kv;
  std::vector<Status> statuses;
  kv.MultiSet({"a", "b", "c"}, {"1", "2", "3"}, &statuses);
  ASSERT_EQ(statuses.size(), 3u);
  for (const auto& status : statuses) EXPECT_TRUE(status.ok());
  std::string value;
  ASSERT_TRUE(kv.Get("b", &value).ok());
  EXPECT_EQ(value, "2");
  EXPECT_EQ(kv.KeyCount(), 3u);
}

TEST(MemKvStoreTest, MultiSetMismatchedValuesIsInvalidArgument) {
  MemKvStore kv;
  std::vector<Status> statuses;
  kv.MultiSet({"a", "b"}, {"only one"}, &statuses);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].IsInvalidArgument());
  EXPECT_TRUE(statuses[1].IsInvalidArgument());
  EXPECT_EQ(kv.KeyCount(), 0u);
}

TEST(MemKvStoreTest, MultiSetCountsOneBatchedCall) {
  MemKvStore kv;
  kv.Set("x", "v").ok();
  kv.Delete("x").ok();
  std::vector<Status> statuses;
  kv.MultiSet({"a", "b", "c"}, {"1", "2", "3"}, &statuses);
  EXPECT_EQ(kv.PointWriteCalls(), 2);  // the Set + the Delete
  EXPECT_EQ(kv.MultiSetCalls(), 1);    // one batch, regardless of keys
  EXPECT_EQ(kv.MultiSetKeys(), 3);
}

TEST(MemKvStoreTest, MultiSetChargesOneRoundTripPerBatch) {
  // Mirror of MultiGetChargesOneRoundTripPerBatch on the write side: 50
  // point writes burn >= 100ms of simulated round trips while one 50-key
  // MultiSet burns a single one.
  MemKvOptions options;
  options.base_latency_us = 2000;
  MemKvStore kv(options);
  std::vector<std::string> keys, values;
  for (int i = 0; i < 50; ++i) {
    keys.push_back("k" + std::to_string(i));
    values.push_back("v");
  }

  const auto sequential_start = std::chrono::steady_clock::now();
  for (const auto& key : keys) {
    ASSERT_TRUE(kv.Set(key, "v").ok());
  }
  const auto sequential_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - sequential_start)
          .count();

  const auto batch_start = std::chrono::steady_clock::now();
  std::vector<Status> statuses;
  kv.MultiSet(keys, values, &statuses);
  const auto batch_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - batch_start)
                            .count();

  for (const auto& status : statuses) EXPECT_TRUE(status.ok());
  EXPECT_GE(sequential_us, 100'000);
  EXPECT_LT(batch_us, sequential_us / 4);
}

TEST(MemKvStoreTest, MultiSetFailsPerKeyOnInjectedFailures) {
  // Per-key failure draws: a batched mutation partially lands, the way an
  // HBase batch spanning region servers does. Bounced keys must not be
  // visible afterwards.
  MemKvOptions options;
  options.failure_probability = 0.3;
  options.seed = 11;
  MemKvStore kv(options);
  std::vector<std::string> keys, values;
  for (int i = 0; i < 200; ++i) {
    keys.push_back("k" + std::to_string(i));
    values.push_back("v");
  }
  std::vector<Status> statuses;
  kv.MultiSet(keys, values, &statuses);
  int ok = 0, unavailable = 0;
  kv.SetFailureProbability(0.0);
  for (size_t i = 0; i < statuses.size(); ++i) {
    std::string value;
    if (statuses[i].ok()) {
      ++ok;
      ASSERT_TRUE(kv.Get(keys[i], &value).ok());
      EXPECT_EQ(value, "v");
    } else {
      EXPECT_TRUE(statuses[i].IsUnavailable());
      EXPECT_TRUE(kv.Get(keys[i], &value).IsNotFound());
      ++unavailable;
    }
  }
  EXPECT_GT(ok, 80);
  EXPECT_GT(unavailable, 20);
}

TEST(MemKvStoreTest, MultiSetOnDownStoreIsAllUnavailable) {
  MemKvStore kv;
  kv.SetDown(true);
  std::vector<Status> statuses;
  kv.MultiSet({"a", "b"}, {"1", "2"}, &statuses);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].IsUnavailable());
  EXPECT_TRUE(statuses[1].IsUnavailable());
  kv.SetDown(false);
  std::string value;
  EXPECT_TRUE(kv.Get("a", &value).IsNotFound());
}

TEST(MemKvStoreTest, MultiSetEmptyBatchIsNoop) {
  MemKvStore kv;
  std::vector<Status> statuses;
  kv.MultiSet({}, {}, &statuses);
  EXPECT_TRUE(statuses.empty());
  EXPECT_EQ(kv.MultiSetCalls(), 1);
  EXPECT_EQ(kv.MultiSetKeys(), 0);
}

TEST(MemKvStoreTest, MultiSetBumpsVersions) {
  MemKvStore kv;
  kv.Set("a", "v0").ok();
  KvEntry entry;
  ASSERT_TRUE(kv.XGet("a", &entry).ok());
  const KvVersion v1 = entry.version;
  std::vector<Status> statuses;
  kv.MultiSet({"a"}, {"v1"}, &statuses);
  ASSERT_TRUE(statuses[0].ok());
  ASSERT_TRUE(kv.XGet("a", &entry).ok());
  EXPECT_GT(entry.version, v1);
  EXPECT_EQ(entry.value, "v1");
}

TEST(MemKvStoreTest, ForEachVisitsEverything) {
  MemKvStore kv;
  for (int i = 0; i < 20; ++i) {
    kv.Set("k" + std::to_string(i), "v").ok();
  }
  int visited = 0;
  kv.ForEach([&](const std::string&, const KvEntry&) { ++visited; });
  EXPECT_EQ(visited, 20);
}

// ------------------------------------------------------------ Replicated ---

TEST(ReplicatedKvTest, SlaveSeesWriteAfterLag) {
  ManualClock clock(0);
  ReplicatedKvOptions options;
  options.num_slaves = 2;
  options.replication_lag_ms = 1000;
  ReplicatedKv kv(options, &clock);

  ASSERT_TRUE(kv.master()->Set("k", "v").ok());
  std::string value;
  // Immediately: master has it, slaves do not.
  EXPECT_TRUE(kv.master()->Get("k", &value).ok());
  EXPECT_TRUE(kv.slave(0)->Get("k", &value).IsNotFound());
  EXPECT_EQ(kv.PendingMutations(0), 1u);

  clock.AdvanceMs(999);
  EXPECT_TRUE(kv.slave(0)->Get("k", &value).IsNotFound());
  clock.AdvanceMs(2);
  ASSERT_TRUE(kv.slave(0)->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  ASSERT_TRUE(kv.slave(1)->Get("k", &value).ok());
}

TEST(ReplicatedKvTest, SlavesAreReadOnly) {
  ManualClock clock(0);
  ReplicatedKv kv({}, &clock);
  EXPECT_TRUE(kv.slave(0)->Set("k", "v").IsUnavailable());
  EXPECT_TRUE(kv.slave(0)->Delete("k").IsUnavailable());
  KvVersion v;
  EXPECT_TRUE(kv.slave(0)->XSet("k", "v", 0, &v).IsUnavailable());
}

TEST(ReplicatedKvTest, DeleteReplicates) {
  ManualClock clock(0);
  ReplicatedKvOptions options;
  options.replication_lag_ms = 100;
  ReplicatedKv kv(options, &clock);
  kv.master()->Set("k", "v").ok();
  clock.AdvanceMs(200);
  std::string value;
  ASSERT_TRUE(kv.slave(0)->Get("k", &value).ok());
  kv.master()->Delete("k").ok();
  clock.AdvanceMs(200);
  EXPECT_TRUE(kv.slave(0)->Get("k", &value).IsNotFound());
}

TEST(ReplicatedKvTest, CatchUpAllIgnoresLag) {
  ManualClock clock(0);
  ReplicatedKvOptions options;
  options.replication_lag_ms = 1'000'000;
  ReplicatedKv kv(options, &clock);
  kv.master()->Set("k", "v").ok();
  std::string value;
  EXPECT_TRUE(kv.slave(0)->Get("k", &value).IsNotFound());
  kv.CatchUpAll();
  ASSERT_TRUE(kv.slave(0)->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  EXPECT_EQ(kv.PendingMutations(0), 0u);
}

TEST(ReplicatedKvTest, StaleReadWindowIsObservable) {
  // The weak-consistency scenario of Section III-G: a value updated on the
  // master reads stale from a slave until the lag elapses.
  ManualClock clock(0);
  ReplicatedKvOptions options;
  options.replication_lag_ms = 500;
  ReplicatedKv kv(options, &clock);
  kv.master()->Set("profile", "old").ok();
  clock.AdvanceMs(600);
  std::string value;
  ASSERT_TRUE(kv.slave(0)->Get("profile", &value).ok());
  ASSERT_EQ(value, "old");

  kv.master()->Set("profile", "new").ok();
  ASSERT_TRUE(kv.slave(0)->Get("profile", &value).ok());
  EXPECT_EQ(value, "old");  // stale
  clock.AdvanceMs(600);
  ASSERT_TRUE(kv.slave(0)->Get("profile", &value).ok());
  EXPECT_EQ(value, "new");
}

TEST(ReplicatedKvTest, MultiGetRespectsReplicationLag) {
  ManualClock clock(0);
  ReplicatedKvOptions options;
  options.replication_lag_ms = 1000;
  ReplicatedKv kv(options, &clock);
  ASSERT_TRUE(kv.master()->Set("a", "1").ok());
  ASSERT_TRUE(kv.master()->Set("b", "2").ok());

  std::vector<std::string> values;
  std::vector<Status> statuses;
  // Master view serves the batch immediately.
  kv.master()->MultiGet({"a", "b", "c"}, &values, &statuses);
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(values[0], "1");
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_TRUE(statuses[2].IsNotFound());

  // The slave view sees nothing until the lag elapses...
  kv.slave(0)->MultiGet({"a", "b"}, &values, &statuses);
  EXPECT_TRUE(statuses[0].IsNotFound());
  EXPECT_TRUE(statuses[1].IsNotFound());
  // ...then drains the matured mutations before serving the batch.
  clock.AdvanceMs(1001);
  kv.slave(0)->MultiGet({"a", "b"}, &values, &statuses);
  ASSERT_TRUE(statuses[0].ok());
  EXPECT_EQ(values[0], "1");
  ASSERT_TRUE(statuses[1].ok());
  EXPECT_EQ(values[1], "2");
}

TEST(ReplicatedKvTest, MultiSetReplicatesAcceptedKeysOnly) {
  // A batched write through the master proxy replicates exactly the keys
  // the master accepted; bounced keys must not resurrect on a slave.
  ManualClock clock(0);
  ReplicatedKvOptions options;
  options.replication_lag_ms = 100;
  ReplicatedKv kv(options, &clock);
  std::vector<Status> statuses;
  kv.master()->MultiSet({"a", "b"}, {"1", "2"}, &statuses);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].ok());
  clock.AdvanceMs(200);
  std::string value;
  ASSERT_TRUE(kv.slave(0)->Get("a", &value).ok());
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(kv.slave(0)->Get("b", &value).ok());
  EXPECT_EQ(value, "2");
}

TEST(ReplicatedKvTest, SlaveMultiSetIsReadOnly) {
  ManualClock clock(0);
  ReplicatedKv kv({}, &clock);
  std::vector<Status> statuses;
  kv.slave(0)->MultiSet({"a"}, {"1"}, &statuses);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].IsUnavailable());
  std::string value;
  EXPECT_TRUE(kv.master()->Get("a", &value).IsNotFound());
}

TEST(ReplicatedKvTest, OrderingPreservedThroughReplication) {
  ManualClock clock(0);
  ReplicatedKvOptions options;
  options.replication_lag_ms = 10;
  ReplicatedKv kv(options, &clock);
  for (int i = 0; i < 50; ++i) {
    kv.master()->Set("k", "v" + std::to_string(i)).ok();
  }
  clock.AdvanceMs(20);
  std::string value;
  ASSERT_TRUE(kv.slave(0)->Get("k", &value).ok());
  EXPECT_EQ(value, "v49");
}

}  // namespace
}  // namespace ips
