#include "codec/coding.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace ips {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed32(&buf, std::numeric_limits<uint32_t>::max());
  Decoder dec(buf);
  uint32_t a, b, c;
  ASSERT_TRUE(dec.GetFixed32(&a));
  ASSERT_TRUE(dec.GetFixed32(&b));
  ASSERT_TRUE(dec.GetFixed32(&c));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 0xDEADBEEF);
  EXPECT_EQ(c, std::numeric_limits<uint32_t>::max());
  EXPECT_TRUE(dec.Empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  Decoder dec(buf);
  uint64_t v;
  ASSERT_TRUE(dec.GetFixed64(&v));
  EXPECT_EQ(v, 0x0123456789ABCDEFULL);
}

TEST(CodingTest, Fixed32IsLittleEndian) {
  std::string buf;
  PutFixed32(&buf, 0x04030201);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x04);
}

class VarintTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintTest, RoundTrips) {
  std::string buf;
  PutVarint64(&buf, GetParam());
  Decoder dec(buf);
  uint64_t v;
  ASSERT_TRUE(dec.GetVarint64(&v));
  EXPECT_EQ(v, GetParam());
  EXPECT_TRUE(dec.Empty());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintTest,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                      (1ULL << 21) - 1, 1ULL << 21, (1ULL << 28) - 1,
                      1ULL << 35, 1ULL << 42, 1ULL << 49, 1ULL << 56,
                      1ULL << 63, std::numeric_limits<uint64_t>::max()));

TEST(VarintTest, EncodedLengthMatchesMagnitude) {
  std::string buf;
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint64(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
}

class SignedVarintTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SignedVarintTest, RoundTrips) {
  std::string buf;
  PutVarintSigned64(&buf, GetParam());
  Decoder dec(buf);
  int64_t v;
  ASSERT_TRUE(dec.GetVarintSigned64(&v));
  EXPECT_EQ(v, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, SignedVarintTest,
    ::testing::Values(int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{63},
                      int64_t{-64}, int64_t{1} << 40, -(int64_t{1} << 40),
                      std::numeric_limits<int64_t>::max(),
                      std::numeric_limits<int64_t>::min()));

TEST(ZigZagTest, SmallMagnitudesStaySmall) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(-12345)), -12345);
}

TEST(CodingTest, LengthPrefixedRoundTrips) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "abc");
  const std::string big(100'000, 'x');
  PutLengthPrefixed(&buf, big);
  Decoder dec(buf);
  std::string_view a, b, c;
  ASSERT_TRUE(dec.GetLengthPrefixed(&a));
  ASSERT_TRUE(dec.GetLengthPrefixed(&b));
  ASSERT_TRUE(dec.GetLengthPrefixed(&c));
  EXPECT_EQ(a, "");
  EXPECT_EQ(b, "abc");
  EXPECT_EQ(c, big);
  EXPECT_TRUE(dec.Empty());
}

TEST(CodingTest, TruncatedInputsFailCleanly) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Decoder dec(std::string_view(buf).substr(0, cut));
    uint64_t v;
    EXPECT_FALSE(dec.GetVarint64(&v)) << cut;
  }
  Decoder dec(std::string_view("ab"));
  uint32_t v32;
  EXPECT_FALSE(dec.GetFixed32(&v32));
  std::string_view sv;
  Decoder dec2(std::string_view("\x05" "ab"));  // claims 5 bytes, has 2
  EXPECT_FALSE(dec2.GetLengthPrefixed(&sv));
}

TEST(CodingTest, UnterminatedVarintFails) {
  // Eleven continuation bytes: longer than any valid varint64.
  std::string buf(11, '\x80');
  Decoder dec(buf);
  uint64_t v;
  EXPECT_FALSE(dec.GetVarint64(&v));
}

TEST(CodingTest, RandomSequenceRoundTrips) {
  Rng rng(99);
  std::vector<uint64_t> values;
  std::string buf;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Next() >> (rng.Uniform(64));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  Decoder dec(buf);
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(dec.GetVarint64(&v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(dec.Empty());
}

}  // namespace
}  // namespace ips
