#include "cache/gcache.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/load_broker.h"
#include "common/clock.h"
#include "common/metrics.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;

// A deterministic in-memory "persistent store" for the cache callbacks.
class FakeStore {
 public:
  FlushFn Flusher() {
    return [this](ProfileId pid, const ProfileData& profile) {
      std::lock_guard<std::mutex> lock(mu_);
      ++flush_attempts_;
      if (fail_flushes_) return Status::Unavailable("injected flush failure");
      stored_[pid] = profile;  // deep copy
      ++flush_count_;
      return Status::OK();
    };
  }

  LoadFn Loader() {
    return [this](ProfileId pid, bool* /*out_degraded*/) -> Result<ProfileData> {
      std::lock_guard<std::mutex> lock(mu_);
      ++load_count_;
      auto it = stored_.find(pid);
      if (it == stored_.end()) {
        return Status::NotFound("no profile " + std::to_string(pid));
      }
      return it->second;
    };
  }

  void SetFailFlushes(bool fail) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_flushes_ = fail;
  }
  int flush_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flush_count_;
  }
  int flush_attempts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flush_attempts_;
  }
  int load_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return load_count_;
  }
  bool Has(ProfileId pid) const {
    std::lock_guard<std::mutex> lock(mu_);
    return stored_.find(pid) != stored_.end();
  }
  ProfileData Get(ProfileId pid) const {
    std::lock_guard<std::mutex> lock(mu_);
    return stored_.at(pid);
  }

 private:
  mutable std::mutex mu_;
  std::map<ProfileId, ProfileData> stored_;
  bool fail_flushes_ = false;
  int flush_count_ = 0;
  int flush_attempts_ = 0;
  int load_count_ = 0;
};

GCacheOptions ManualOptions() {
  GCacheOptions options;
  options.start_background_threads = false;  // tests drive swap/flush
  options.lru_shards = 4;
  options.dirty_shards = 2;
  options.memory_limit_bytes = 1 << 20;
  options.write_granularity_ms = kMinute;
  return options;
}

TEST(GCacheTest, MissOnUnknownProfileReturnsNotFound) {
  FakeStore store;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  bool hit = true;
  Status status =
      cache.WithProfile(1, [](const ProfileData&) {}, &hit);
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.EntryCount(), 0u);
}

TEST(GCacheTest, WriteCreatesEntryAndMarksDirty) {
  FakeStore store;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  ASSERT_TRUE(cache
                  .WithProfileMutable(1,
                                      [](ProfileData& profile) {
                                        profile
                                            .Add(kMinute, 1, 1, 7,
                                                 CountVector{1})
                                            .ok();
                                      })
                  .ok());
  EXPECT_EQ(cache.EntryCount(), 1u);
  EXPECT_EQ(cache.DirtyCount(), 1u);
  EXPECT_FALSE(store.Has(1));  // write-back: not persisted yet
  EXPECT_EQ(cache.FlushOnce(), 1u);
  EXPECT_TRUE(store.Has(1));
  EXPECT_EQ(cache.DirtyCount(), 0u);
}

TEST(GCacheTest, SecondReadIsHit) {
  FakeStore store;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  cache.WithProfileMutable(1, [](ProfileData&) {}).ok();
  bool hit = false;
  ASSERT_TRUE(cache.WithProfile(1, [](const ProfileData&) {}, &hit).ok());
  EXPECT_TRUE(hit);
  EXPECT_GT(cache.HitRatio(), 0.0);
}

TEST(GCacheTest, MissLoadsFromStore) {
  FakeStore store;
  {
    // Populate the store through a first cache.
    GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
                 store.Loader());
    cache
        .WithProfileMutable(42,
                            [](ProfileData& profile) {
                              profile.Add(kMinute, 1, 1, 9, CountVector{5})
                                  .ok();
                            })
        .ok();
    cache.FlushAll();
  }
  // Fresh cache: the read must load from the store.
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  bool hit = true;
  int64_t count = 0;
  ASSERT_TRUE(cache
                  .WithProfile(42,
                               [&](const ProfileData& profile) {
                                 count = profile.slices()
                                             .front()
                                             .FindSlot(1)
                                             ->Find(1)
                                             ->Find(9)
                                             ->counts[0];
                               },
                               &hit)
                  .ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(count, 5);
}

TEST(GCacheTest, WithProfilesCoalescesMissesIntoOneBatchLoad) {
  FakeStore store;
  {
    GCache seeding(ManualOptions(), SystemClock::Instance(), store.Flusher(),
                   store.Loader());
    for (ProfileId pid = 1; pid <= 4; ++pid) {
      seeding
          .WithProfileMutable(pid,
                              [pid](ProfileData& profile) {
                                profile
                                    .Add(kMinute, 1, 1, pid * 100,
                                         CountVector{1})
                                    .ok();
                              })
          .ok();
    }
    seeding.FlushAll();
  }

  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  std::atomic<int> batch_loads{0};
  std::vector<std::vector<ProfileId>> batches;
  std::mutex batches_mu;
  LoadFn loader = store.Loader();
  cache.set_batch_loader(
      [&](const std::vector<ProfileId>& pids, std::vector<bool>* out_degraded)
          -> std::vector<Result<ProfileData>> {
        ++batch_loads;
        {
          std::lock_guard<std::mutex> lock(batches_mu);
          batches.push_back(pids);
        }
        if (out_degraded != nullptr) out_degraded->assign(pids.size(), false);
        std::vector<Result<ProfileData>> out;
        out.reserve(pids.size());
        for (ProfileId pid : pids) out.push_back(loader(pid, nullptr));
        return out;
      });

  // Warm pid 1 so the batch sees one hit, three misses, one unknown.
  ASSERT_TRUE(cache.WithProfile(1, [](const ProfileData&) {}).ok());

  const std::vector<ProfileId> pids = {1, 2, 3, 99, 4};
  std::vector<ProfileId> seen;
  std::vector<Status> statuses;
  const size_t hits = cache.WithProfiles(
      pids,
      [&](size_t i, const ProfileData& profile) {
        ASSERT_LT(i, pids.size());
        EXPECT_EQ(profile.TotalFeatures(), 1u);
        seen.push_back(pids[i]);
      },
      &statuses);

  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(batch_loads.load(), 1);  // every miss in one loader call
  ASSERT_EQ(batches.size(), 1u);
  // The loader receives the deduped miss set in sorted pid order (the batch
  // path sorts misses so duplicates coalesce without a hash map).
  EXPECT_EQ(batches[0], (std::vector<ProfileId>{2, 3, 4, 99}));
  ASSERT_EQ(statuses.size(), pids.size());
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_TRUE(statuses[3].IsNotFound());  // unknown pid, no callback
  EXPECT_TRUE(statuses[4].ok());
  // Callbacks are grouped per cache entry (each entry locked exactly once),
  // so cross-profile order is unspecified; every available pid is served.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<ProfileId>{1, 2, 3, 4}));
  EXPECT_EQ(cache.EntryCount(), 4u);  // loaded misses are now cached
}

TEST(GCacheTest, WithProfilesCoalescesDuplicatePids) {
  FakeStore store;
  {
    GCache seeding(ManualOptions(), SystemClock::Instance(), store.Flusher(),
                   store.Loader());
    seeding
        .WithProfileMutable(
            7,
            [](ProfileData& profile) {
              profile.Add(kMinute, 1, 1, 700, CountVector{1}).ok();
            })
        .ok();
    seeding.FlushAll();
  }
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  std::vector<std::vector<ProfileId>> batches;
  LoadFn loader = store.Loader();
  cache.set_batch_loader(
      [&](const std::vector<ProfileId>& pids, std::vector<bool>* out_degraded)
          -> std::vector<Result<ProfileData>> {
        batches.push_back(pids);
        if (out_degraded != nullptr) out_degraded->assign(pids.size(), false);
        std::vector<Result<ProfileData>> out;
        for (ProfileId pid : pids) out.push_back(loader(pid, nullptr));
        return out;
      });

  std::vector<Status> statuses;
  int callbacks = 0;
  cache.WithProfiles(
      {7, 7, 7}, [&](size_t, const ProfileData&) { ++callbacks; }, &statuses);
  // One load for the coalesced pid, but every occurrence gets its callback.
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0], (std::vector<ProfileId>{7}));
  EXPECT_EQ(callbacks, 3);
  for (const auto& status : statuses) EXPECT_TRUE(status.ok());
}

TEST(GCacheTest, WithProfilesFallsBackToPerPidLoader) {
  FakeStore store;
  {
    GCache seeding(ManualOptions(), SystemClock::Instance(), store.Flusher(),
                   store.Loader());
    seeding.WithProfileMutable(3, [](ProfileData&) {}).ok();
    seeding.FlushAll();
  }
  // No batch loader installed: the per-pid loader serves each miss.
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  std::vector<Status> statuses;
  int callbacks = 0;
  const size_t hits = cache.WithProfiles(
      {3, 404}, [&](size_t, const ProfileData&) { ++callbacks; }, &statuses);
  EXPECT_EQ(hits, 0u);
  EXPECT_EQ(callbacks, 1);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].IsNotFound());
}

TEST(GCacheTest, MemoryUsageRatioZeroLimitIsZeroNotNan) {
  FakeStore store;
  GCacheOptions options = ManualOptions();
  options.memory_limit_bytes = 0;  // degenerate "unbounded" config
  GCache cache(options, SystemClock::Instance(), store.Flusher(),
               store.Loader());
  EXPECT_EQ(cache.MemoryUsageRatio(), 0.0);
  cache.WithProfileMutable(1, [](ProfileData&) {}).ok();
  EXPECT_EQ(cache.MemoryUsageRatio(), 0.0);  // still well-defined
}

TEST(GCacheTest, EvictionKeepsMemoryUnderWatermark) {
  FakeStore store;
  GCacheOptions options = ManualOptions();
  options.memory_limit_bytes = 64 << 10;
  options.high_watermark = 0.85;
  options.low_watermark = 0.7;
  GCache cache(options, SystemClock::Instance(), store.Flusher(),
               store.Loader());
  // Write until well past the limit.
  for (ProfileId pid = 1; pid <= 200; ++pid) {
    cache
        .WithProfileMutable(pid,
                            [&](ProfileData& profile) {
                              for (int i = 0; i < 20; ++i) {
                                profile
                                    .Add(kMinute * (i + 1), 1, 1,
                                         static_cast<FeatureId>(i + 1),
                                         CountVector{1, 2, 3})
                                    .ok();
                              }
                            })
        .ok();
  }
  ASSERT_GT(cache.MemoryBytes(), options.memory_limit_bytes);
  const size_t evicted = cache.SwapOnce();
  EXPECT_GT(evicted, 0u);
  EXPECT_LE(cache.MemoryUsageRatio(), options.high_watermark + 0.01);
  // Write-back: every evicted dirty profile must have been persisted.
  for (ProfileId pid = 1; pid <= 200; ++pid) {
    bool cached = cache.WithProfile(pid, [](const ProfileData&) {}).ok();
    EXPECT_TRUE(cached || store.Has(pid)) << pid;
  }
}

TEST(GCacheTest, EvictedDataReloadsIntact) {
  FakeStore store;
  GCacheOptions options = ManualOptions();
  options.memory_limit_bytes = 32 << 10;
  GCache cache(options, SystemClock::Instance(), store.Flusher(),
               store.Loader());
  for (ProfileId pid = 1; pid <= 100; ++pid) {
    cache
        .WithProfileMutable(pid,
                            [&](ProfileData& profile) {
                              profile
                                  .Add(kMinute, 1, 1, pid * 10,
                                       CountVector{static_cast<int64_t>(pid)})
                                  .ok();
                            })
        .ok();
    cache.SwapOnce();
  }
  cache.FlushAll();
  // All data readable with correct contents regardless of cache state.
  for (ProfileId pid = 1; pid <= 100; ++pid) {
    int64_t count = 0;
    ASSERT_TRUE(cache
                    .WithProfile(pid,
                                 [&](const ProfileData& profile) {
                                   count = profile.slices()
                                               .front()
                                               .FindSlot(1)
                                               ->Find(1)
                                               ->Find(pid * 10)
                                               ->counts[0];
                                 })
                    .ok())
        << pid;
    EXPECT_EQ(count, static_cast<int64_t>(pid));
  }
}

TEST(GCacheTest, FlushFailureKeepsEntryDirty) {
  FakeStore store;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  cache.WithProfileMutable(1, [](ProfileData&) {}).ok();
  store.SetFailFlushes(true);
  EXPECT_EQ(cache.FlushOnce(), 0u);
  EXPECT_EQ(cache.DirtyCount(), 1u);  // requeued
  store.SetFailFlushes(false);
  EXPECT_EQ(cache.FlushOnce(), 1u);
  EXPECT_EQ(cache.DirtyCount(), 0u);
  EXPECT_TRUE(store.Has(1));
}

TEST(GCacheTest, InvalidateFlushesDirtyEntry) {
  FakeStore store;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  cache
      .WithProfileMutable(7,
                          [](ProfileData& profile) {
                            profile.Add(kMinute, 1, 1, 1, CountVector{1})
                                .ok();
                          })
      .ok();
  ASSERT_TRUE(cache.Invalidate(7).ok());
  EXPECT_EQ(cache.EntryCount(), 0u);
  EXPECT_TRUE(store.Has(7));  // flushed before drop
}

TEST(GCacheTest, RepeatedMutationsOnlyOneDirtyEntry) {
  FakeStore store;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  for (int i = 0; i < 10; ++i) {
    cache
        .WithProfileMutable(1,
                            [&](ProfileData& profile) {
                              profile
                                  .Add(kMinute * (i + 1), 1, 1, 1,
                                       CountVector{1})
                                  .ok();
                            })
        .ok();
  }
  EXPECT_EQ(cache.DirtyCount(), 1u);
  EXPECT_EQ(cache.FlushOnce(), 1u);
  EXPECT_EQ(store.flush_count(), 1);
}

TEST(GCacheTest, HitRatioTracksAccessPattern) {
  FakeStore store;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  cache.WithProfileMutable(1, [](ProfileData&) {}).ok();  // miss (create)
  for (int i = 0; i < 9; ++i) {
    cache.WithProfile(1, [](const ProfileData&) {}).ok();  // 9 hits
  }
  EXPECT_NEAR(cache.HitRatio(), 0.9, 0.01);
}

TEST(GCacheTest, BackgroundThreadsFlushAndSwap) {
  FakeStore store;
  GCacheOptions options = ManualOptions();
  options.start_background_threads = true;
  options.flush_interval_ms = 10;
  options.swap_interval_ms = 10;
  {
    GCache cache(options, SystemClock::Instance(), store.Flusher(),
                 store.Loader());
    cache
        .WithProfileMutable(5,
                            [](ProfileData& profile) {
                              profile.Add(kMinute, 1, 1, 1, CountVector{1})
                                  .ok();
                            })
        .ok();
    // Wait for a background flush.
    for (int i = 0; i < 200 && !store.Has(5); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(store.Has(5));
  }
  // Destructor joined threads and flushed; no crash = pass.
}

TEST(GCacheTest, ConcurrentMixedTrafficIsSafe) {
  FakeStore store;
  GCacheOptions options = ManualOptions();
  options.memory_limit_bytes = 256 << 10;
  GCache cache(options, SystemClock::Instance(), store.Flusher(),
               store.Loader());
  std::atomic<bool> stop{false};
  std::atomic<int> writes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        const ProfileId pid = (t * 131 + i * 7) % 50 + 1;
        if (i % 3 == 0) {
          cache
              .WithProfileMutable(pid,
                                  [&](ProfileData& profile) {
                                    profile
                                        .Add(kMinute * (i % 100 + 1), 1, 1,
                                             pid, CountVector{1})
                                        .ok();
                                  })
              .ok();
          writes.fetch_add(1);
        } else {
          cache.WithProfile(pid, [](const ProfileData&) {}).ok();
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load()) {
      cache.SwapOnce();
      cache.FlushOnce();
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < 4; ++t) threads[t].join();
  stop.store(true);
  threads.back().join();
  cache.FlushAll();
  EXPECT_GT(writes.load(), 0);
  // Every touched profile is either cached or persisted.
  for (ProfileId pid = 1; pid <= 50; ++pid) {
    bool cached = cache.WithProfile(pid, [](const ProfileData&) {}).ok();
    EXPECT_TRUE(cached || store.Has(pid)) << pid;
  }
}

TEST(GCacheTest, SwapCannotEvictWhenStoreDown) {
  // All entries dirty + flush failing: eviction must refuse to drop data
  // (write-back means dropping an unflushed entry loses acknowledged
  // writes), so memory stays over the watermark until the store recovers.
  FakeStore store;
  GCacheOptions options = ManualOptions();
  options.memory_limit_bytes = 16 << 10;
  GCache cache(options, SystemClock::Instance(), store.Flusher(),
               store.Loader());
  store.SetFailFlushes(true);
  for (ProfileId pid = 1; pid <= 60; ++pid) {
    cache
        .WithProfileMutable(pid,
                            [&](ProfileData& profile) {
                              for (int i = 0; i < 10; ++i) {
                                profile
                                    .Add(kMinute * (i + 1), 1, 1,
                                         static_cast<FeatureId>(i + 1),
                                         CountVector{1, 2, 3})
                                    .ok();
                              }
                            })
        .ok();
  }
  ASSERT_GT(cache.MemoryBytes(), options.memory_limit_bytes);
  EXPECT_EQ(cache.SwapOnce(), 0u);
  EXPECT_EQ(cache.EntryCount(), 60u);  // nothing lost
  // Store recovers: the same pass now flushes and evicts.
  store.SetFailFlushes(false);
  EXPECT_GT(cache.SwapOnce(), 0u);
  for (ProfileId pid = 1; pid <= 60; ++pid) {
    bool cached = cache.WithProfile(pid, [](const ProfileData&) {}).ok();
    EXPECT_TRUE(cached || store.Has(pid)) << pid;
  }
}

TEST(GCacheTest, LoaderFailurePropagatesWithoutCachingGarbage) {
  FakeStore store;
  int fail_loads = 0;
  GCache cache(
      ManualOptions(), SystemClock::Instance(), store.Flusher(),
      [&](ProfileId pid, bool* out_degraded) -> Result<ProfileData> {
        if (fail_loads > 0) {
          --fail_loads;
          return Status::Unavailable("storage flaking");
        }
        return store.Loader()(pid, out_degraded);
      });
  // Populate the store via a throwaway cache write + flush, then start
  // injecting load failures.
  cache.WithProfileMutable(5, [](ProfileData& p) {
    p.Add(kMinute, 1, 1, 1, CountVector{4}).ok();
  }).ok();
  cache.FlushAll();
  cache.Invalidate(5).ok();
  fail_loads = 2;

  // Two failed loads surface the storage error; the third succeeds.
  EXPECT_TRUE(
      cache.WithProfile(5, [](const ProfileData&) {}).IsUnavailable());
  EXPECT_TRUE(
      cache.WithProfile(5, [](const ProfileData&) {}).IsUnavailable());
  int64_t count = 0;
  ASSERT_TRUE(cache
                  .WithProfile(5,
                               [&](const ProfileData& p) {
                                 count = p.slices()
                                             .front()
                                             .FindSlot(1)
                                             ->Find(1)
                                             ->Find(1)
                                             ->counts[0];
                               })
                  .ok());
  EXPECT_EQ(count, 4);
}

TEST(GCacheTest, FlushPassStopsAtFailureCapAndRequeuesRemainder) {
  FakeStore store;
  MetricsRegistry metrics;
  GCacheOptions options = ManualOptions();
  options.dirty_shards = 1;
  options.flush_threads = 1;
  options.max_flush_failures_per_pass = 3;
  GCache cache(options, SystemClock::Instance(), store.Flusher(),
               store.Loader(), &metrics);
  for (ProfileId pid = 1; pid <= 10; ++pid) {
    cache
        .WithProfileMutable(pid,
                            [](ProfileData& profile) {
                              profile.Add(kMinute, 1, 1, 1, CountVector{1})
                                  .ok();
                            })
        .ok();
  }
  ASSERT_EQ(cache.DirtyCount(), 10u);
  store.SetFailFlushes(true);
  EXPECT_EQ(cache.FlushOnce(), 0u);
  // The pass stopped at the cap: only 3 flush attempts hit the failing
  // store, not one per dirty entry, and everything stayed queued.
  EXPECT_EQ(store.flush_attempts(), 3);
  EXPECT_EQ(cache.DirtyCount(), 10u);
  EXPECT_EQ(metrics.GetCounter("cache.flush_failures")->Value(), 3);
  // Store recovers: the next pass drains the whole list.
  store.SetFailFlushes(false);
  EXPECT_EQ(cache.FlushOnce(), 10u);
  EXPECT_EQ(cache.DirtyCount(), 0u);
}

TEST(GCacheTest, DegradedLoadFlagsReadsUntilCleanFlush) {
  FakeStore store;
  {
    GCache seeding(ManualOptions(), SystemClock::Instance(), store.Flusher(),
                   store.Loader());
    seeding
        .WithProfileMutable(
            42,
            [](ProfileData& profile) {
              profile.Add(kMinute, 1, 1, 9, CountVector{5}).ok();
            })
        .ok();
    seeding.FlushAll();
  }
  // Loader that simulates a fallback-replica read while degrade is set.
  bool degrade = true;
  LoadFn loader = store.Loader();
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               [&](ProfileId pid, bool* out_degraded) -> Result<ProfileData> {
                 auto result = loader(pid, out_degraded);
                 if (degrade && out_degraded != nullptr) *out_degraded = true;
                 return result;
               });
  bool hit = true;
  bool degraded = false;
  ASSERT_TRUE(
      cache.WithProfile(42, [](const ProfileData&) {}, &hit, &degraded).ok());
  EXPECT_FALSE(hit);
  EXPECT_TRUE(degraded);
  EXPECT_TRUE(cache.StoreUnhealthy());
  // A hit on the resident copy still reports degraded: the entry came from
  // a fallback and the store has not been seen healthy since.
  degraded = false;
  ASSERT_TRUE(
      cache.WithProfile(42, [](const ProfileData&) {}, &hit, &degraded).ok());
  EXPECT_TRUE(hit);
  EXPECT_TRUE(degraded);
  // Dirty the entry and flush cleanly: the flush reaches the primary store,
  // so the entry is authoritative again and the health flag clears.
  degrade = false;
  cache
      .WithProfileMutable(42,
                          [](ProfileData& profile) {
                            profile.Add(kMinute, 1, 1, 9, CountVector{1}).ok();
                          })
      .ok();
  EXPECT_EQ(cache.FlushOnce(), 1u);
  EXPECT_FALSE(cache.StoreUnhealthy());
  degraded = true;
  ASSERT_TRUE(
      cache.WithProfile(42, [](const ProfileData&) {}, &hit, &degraded).ok());
  EXPECT_FALSE(degraded);
}

TEST(GCacheTest, BatchedFlushDrainsShardInGroups) {
  FakeStore store;
  MetricsRegistry metrics;
  GCacheOptions options = ManualOptions();
  options.dirty_shards = 1;
  options.flush_batch_max = 4;
  GCache cache(options, SystemClock::Instance(), store.Flusher(),
               store.Loader(), &metrics);
  std::atomic<int> batch_calls{0};
  std::vector<size_t> group_sizes;
  std::mutex groups_mu;
  cache.set_batch_flusher(
      [&](const std::vector<ProfileId>& pids,
          const std::vector<const ProfileData*>& profiles) {
        ++batch_calls;
        {
          std::lock_guard<std::mutex> lock(groups_mu);
          group_sizes.push_back(pids.size());
        }
        FlushFn flusher = store.Flusher();
        std::vector<Status> statuses;
        for (size_t i = 0; i < pids.size(); ++i) {
          statuses.push_back(flusher(pids[i], *profiles[i]));
        }
        return statuses;
      });
  for (ProfileId pid = 1; pid <= 10; ++pid) {
    cache
        .WithProfileMutable(pid,
                            [](ProfileData& profile) {
                              profile.Add(kMinute, 1, 1, 1, CountVector{1})
                                  .ok();
                            })
        .ok();
  }
  ASSERT_EQ(cache.DirtyCount(), 10u);
  EXPECT_EQ(cache.FlushOnce(), 10u);
  EXPECT_EQ(cache.DirtyCount(), 0u);
  // 10 dirty entries in groups of <= 4: three flusher calls, never one per
  // entry.
  EXPECT_EQ(batch_calls.load(), 3);
  for (size_t size : group_sizes) EXPECT_LE(size, 4u);
  EXPECT_EQ(metrics.GetCounter("cache.batch_flushes")->Value(), 3);
  EXPECT_EQ(metrics.GetCounter("cache.flushed")->Value(), 10);
  for (ProfileId pid = 1; pid <= 10; ++pid) EXPECT_TRUE(store.Has(pid));
}

TEST(GCacheTest, BatchedFlushOutageBoundsFailuresAndRequeues) {
  // A KV outage during a batched flush pass: failures stay bounded by the
  // per-pass cap (plus at most one group), every entry is requeued, and the
  // pass drains cleanly after recovery.
  FakeStore store;
  MetricsRegistry metrics;
  GCacheOptions options = ManualOptions();
  options.dirty_shards = 1;
  options.flush_batch_max = 4;
  options.max_flush_failures_per_pass = 3;
  GCache cache(options, SystemClock::Instance(), store.Flusher(),
               store.Loader(), &metrics);
  std::atomic<bool> kv_down{true};
  std::atomic<int> batch_calls{0};
  cache.set_batch_flusher(
      [&](const std::vector<ProfileId>& pids,
          const std::vector<const ProfileData*>& profiles) {
        ++batch_calls;
        if (kv_down.load()) {
          return std::vector<Status>(pids.size(),
                                     Status::Unavailable("kv outage"));
        }
        FlushFn flusher = store.Flusher();
        std::vector<Status> statuses;
        for (size_t i = 0; i < pids.size(); ++i) {
          statuses.push_back(flusher(pids[i], *profiles[i]));
        }
        return statuses;
      });
  for (ProfileId pid = 1; pid <= 12; ++pid) {
    cache
        .WithProfileMutable(pid,
                            [](ProfileData& profile) {
                              profile.Add(kMinute, 1, 1, 1, CountVector{1})
                                  .ok();
                            })
        .ok();
  }
  EXPECT_EQ(cache.FlushOnce(), 0u);
  // One failing group trips the cap; the other 8 entries were requeued
  // untried (no flusher call for them).
  EXPECT_EQ(batch_calls.load(), 1);
  EXPECT_EQ(cache.DirtyCount(), 12u);
  EXPECT_EQ(metrics.GetCounter("cache.flush_failures")->Value(), 4);
  EXPECT_TRUE(cache.StoreUnhealthy());
  // Outage over: everything drains, and the health flag clears.
  kv_down.store(false);
  EXPECT_EQ(cache.FlushOnce(), 12u);
  EXPECT_EQ(cache.DirtyCount(), 0u);
  EXPECT_FALSE(cache.StoreUnhealthy());
  for (ProfileId pid = 1; pid <= 12; ++pid) EXPECT_TRUE(store.Has(pid));
}

TEST(GCacheTest, FlushAllZeroProgressBailsInsteadOfBusySpin) {
  // Regression: a pass can flush nothing while reporting zero failures
  // (max_flush_failures_per_pass of 0 requeues the whole list untried).
  // FlushAll used to treat "no failures" as success and busy-spin its full
  // 64 rounds with no backoff; it must instead back off and give up after a
  // few stuck rounds.
  FakeStore store;
  ManualClock clock(0);
  GCacheOptions options = ManualOptions();
  options.dirty_shards = 1;
  options.max_flush_failures_per_pass = 0;
  GCache cache(options, &clock, store.Flusher(), store.Loader());
  cache
      .WithProfileMutable(1,
                          [](ProfileData& profile) {
                            profile.Add(kMinute, 1, 1, 1, CountVector{1}).ok();
                          })
      .ok();
  cache.FlushAll();  // must return (bounded rounds), not spin 64 rounds
  EXPECT_EQ(cache.DirtyCount(), 1u);  // nothing could flush
  EXPECT_EQ(store.flush_attempts(), 0);
  // The stuck rounds backed off through the manual clock (not a busy spin)
  // and stopped well short of 64 rounds' worth of max backoff.
  EXPECT_GT(clock.NowMs(), 0);
  EXPECT_LE(clock.NowMs(), 4 * options.flush_backoff_max_ms);
}

TEST(GCacheTest, LoadBrokerSharesMissAndFansDegradedToEveryReader) {
  // Two concurrent readers miss on the same pid with a broker installed: the
  // store sees ONE load, and a replica-fallback (degraded) load flags BOTH
  // readers, not just the one that initiated the fetch.
  FakeStore store;
  {
    GCache seeding(ManualOptions(), SystemClock::Instance(), store.Flusher(),
                   store.Loader());
    seeding
        .WithProfileMutable(
            42,
            [](ProfileData& profile) {
              profile.Add(kMinute, 1, 1, 9, CountVector{5}).ok();
            })
        .ok();
    seeding.FlushAll();
  }
  MetricsRegistry metrics;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader(), &metrics);
  LoadFn loader = store.Loader();
  std::atomic<int> fetch_calls{0};
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool fetch_entered = false;
  bool gate_open = false;
  LoadBrokerOptions broker_options;
  broker_options.window_micros = 0;
  LoadBroker broker(
      broker_options,
      [&](const std::vector<ProfileId>& pids, std::vector<bool>* out_degraded)
          -> std::vector<Result<ProfileData>> {
        ++fetch_calls;
        {
          std::unique_lock<std::mutex> lock(gate_mu);
          fetch_entered = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return gate_open; });
        }
        out_degraded->assign(pids.size(), true);  // replica fallback
        std::vector<Result<ProfileData>> out;
        for (ProfileId pid : pids) out.push_back(loader(pid, nullptr));
        return out;
      },
      SystemClock::Instance(), &metrics);
  cache.set_load_broker(&broker);

  const int loads_before = store.load_count();
  Status status_a, status_b;
  bool degraded_a = false, degraded_b = false;
  std::thread a([&] {
    status_a =
        cache.WithProfile(42, [](const ProfileData&) {}, nullptr, &degraded_a);
  });
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return fetch_entered; });
  }
  std::thread b([&] {
    status_b =
        cache.WithProfile(42, [](const ProfileData&) {}, nullptr, &degraded_b);
  });
  // The second reader must be attached to the in-flight load before the
  // fetch is released.
  Counter* hits = metrics.GetCounter("broker.single_flight_hits");
  for (int i = 0; i < 5000 && hits->Value() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(hits->Value(), 1);
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
    gate_cv.notify_all();
  }
  a.join();
  b.join();

  EXPECT_TRUE(status_a.ok()) << status_a.ToString();
  EXPECT_TRUE(status_b.ok()) << status_b.ToString();
  EXPECT_EQ(fetch_calls.load(), 1);
  EXPECT_EQ(store.load_count() - loads_before, 1);
  EXPECT_TRUE(degraded_a);
  EXPECT_TRUE(degraded_b);
  EXPECT_TRUE(cache.StoreUnhealthy());
}

TEST(GCacheTest, FlushStoreRoundTripRunsOutsideEntryLocks) {
  // The flusher callback reads every entry it is flushing through the public
  // API. Under the old design FlushShard held every entry lock in the group
  // across the storage round trip, so this deadlocked; with snapshot-based
  // flushing the entries stay readable (and writable) during the trip.
  FakeStore store;
  GCacheOptions options = ManualOptions();
  options.dirty_shards = 1;
  options.flush_batch_max = 8;
  GCache cache(options, SystemClock::Instance(), store.Flusher(),
               store.Loader());
  cache.set_batch_flusher(
      [&](const std::vector<ProfileId>& pids,
          const std::vector<const ProfileData*>& profiles) {
        for (ProfileId pid : pids) {
          bool hit = false;
          EXPECT_TRUE(
              cache.WithProfile(pid, [](const ProfileData&) {}, &hit).ok());
          EXPECT_TRUE(hit);
        }
        FlushFn flusher = store.Flusher();
        std::vector<Status> statuses;
        for (size_t i = 0; i < pids.size(); ++i) {
          statuses.push_back(flusher(pids[i], *profiles[i]));
        }
        return statuses;
      });
  for (ProfileId pid = 1; pid <= 4; ++pid) {
    cache
        .WithProfileMutable(pid,
                            [](ProfileData& profile) {
                              profile.Add(kMinute, 1, 1, 1, CountVector{1})
                                  .ok();
                            })
        .ok();
  }
  EXPECT_EQ(cache.FlushOnce(), 4u);
  EXPECT_EQ(cache.DirtyCount(), 0u);
  for (ProfileId pid = 1; pid <= 4; ++pid) EXPECT_TRUE(store.Has(pid));
}

TEST(GCacheTest, WriteDuringFlushRoundTripRequeuesInsteadOfLosingIt) {
  // A write lands while the entry's snapshot is on the wire: the store gets
  // the snapshot, but the entry must stay dirty (epoch recheck) so the next
  // pass persists the newer state — no lost update, no premature clean.
  FakeStore store;
  GCacheOptions options = ManualOptions();
  options.dirty_shards = 1;
  options.flush_batch_max = 4;
  GCache cache(options, SystemClock::Instance(), store.Flusher(),
               store.Loader());
  std::atomic<bool> mutate_during_flush{true};
  cache.set_batch_flusher(
      [&](const std::vector<ProfileId>& pids,
          const std::vector<const ProfileData*>& profiles) {
        if (mutate_during_flush.exchange(false)) {
          EXPECT_TRUE(cache
                          .WithProfileMutable(
                              1,
                              [](ProfileData& profile) {
                                profile
                                    .Add(kMinute, 1, 1, 2, CountVector{1})
                                    .ok();
                              })
                          .ok());
        }
        FlushFn flusher = store.Flusher();
        std::vector<Status> statuses;
        for (size_t i = 0; i < pids.size(); ++i) {
          statuses.push_back(flusher(pids[i], *profiles[i]));
        }
        return statuses;
      });
  cache
      .WithProfileMutable(1,
                          [](ProfileData& profile) {
                            profile.Add(kMinute, 1, 1, 1, CountVector{1}).ok();
                          })
      .ok();
  EXPECT_EQ(cache.FlushOnce(), 1u);
  // The pre-write snapshot persisted, and the racing write kept the entry
  // queued.
  EXPECT_EQ(store.Get(1).TotalFeatures(), 1u);
  EXPECT_EQ(cache.DirtyCount(), 1u);
  EXPECT_EQ(cache.FlushOnce(), 1u);
  EXPECT_EQ(store.Get(1).TotalFeatures(), 2u);
  EXPECT_EQ(cache.DirtyCount(), 0u);
}

TEST(GCacheTest, EvictionWriteBackDoesNotBlockConcurrentReaders) {
  // Regression for the eviction lock-hold bug: EvictFromShard used to run
  // the KV write-back while still holding shard.mu, so a slow store stalled
  // every reader and writer hashing into that shard. Victims are now
  // collected under the lock and written back outside it: with the flusher
  // parked mid-round-trip, reads and writes on the same shard must complete.
  FakeStore store;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool eviction_flush_started = false;
  bool release_flush = false;
  constexpr ProfileId kCold = 1;
  FlushFn blocking_flusher = [&](ProfileId pid, const ProfileData& profile) {
    if (pid == kCold) {
      std::unique_lock<std::mutex> lock(gate_mu);
      eviction_flush_started = true;
      gate_cv.notify_all();
      gate_cv.wait(lock, [&] { return release_flush; });
    }
    return store.Flusher()(pid, profile);
  };
  GCacheOptions options = ManualOptions();
  options.lru_shards = 1;  // one shard: any held lock would block everyone
  options.memory_limit_bytes = 4 << 10;
  GCache cache(options, SystemClock::Instance(), blocking_flusher,
               store.Loader());
  // Cold dirty giant at the LRU tail...
  cache
      .WithProfileMutable(kCold,
                          [](ProfileData& profile) {
                            for (int i = 0; i < 120; ++i) {
                              profile
                                  .Add(kMinute * (i + 1), 1, 1,
                                       static_cast<FeatureId>(i + 1),
                                       CountVector{1, 2, 3})
                                  .ok();
                            }
                          })
      .ok();
  // ...and a small recent entry that must survive the pass.
  cache
      .WithProfileMutable(2,
                          [](ProfileData& profile) {
                            profile.Add(kMinute, 1, 1, 1, CountVector{1}).ok();
                          })
      .ok();
  ASSERT_GT(cache.MemoryBytes(), options.memory_limit_bytes);

  std::thread swapper([&] { cache.SwapOnce(); });
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(5),
                                 [&] { return eviction_flush_started; }));
  }
  // The write-back is parked mid-flight. Same-shard traffic must complete
  // while it is: run it on a side thread and require completion BEFORE the
  // gate opens (if the pass still held shard.mu, `done` could only flip
  // after the release below and the expectation would fail).
  std::atomic<bool> done{false};
  std::thread reader([&] {
    bool hit = false;
    EXPECT_TRUE(cache.WithProfile(2, [](const ProfileData&) {}, &hit).ok());
    EXPECT_TRUE(hit);
    EXPECT_TRUE(cache
                    .WithProfileMutable(3,
                                        [](ProfileData& profile) {
                                          profile
                                              .Add(kMinute, 1, 1, 1,
                                                   CountVector{1})
                                              .ok();
                                        })
                    .ok());
    done.store(true);
  });
  for (int i = 0; i < 200 && !done.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(done.load());
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release_flush = true;
    gate_cv.notify_all();
  }
  reader.join();
  swapper.join();
  // The pass finished its job: the cold giant was written back and evicted.
  EXPECT_TRUE(store.Has(kCold));
  bool hit = true;
  EXPECT_TRUE(cache.WithProfile(kCold, [](const ProfileData&) {}, &hit).ok());
  EXPECT_FALSE(hit);  // reloaded from the store, not resident
}

TEST(GCacheTest, InvalidateDoesNotDropWriteRacingItsFlush) {
  // Regression: Invalidate used to flush under the entry lock, drop the
  // lock, then erase under the shard lock — a writer landing in that window
  // re-dirtied the entry and the erase silently discarded the write. The
  // erase now re-checks `dirty` under both locks and loops back to flush
  // again, so the racing write must survive to the store.
  FakeStore store;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool flush_started = false;
  bool writer_started = false;
  std::atomic<int> flushes_of_7{0};
  FlushFn gated_flusher = [&](ProfileId pid, const ProfileData& profile) {
    if (pid == 7 && flushes_of_7.fetch_add(1) == 0) {
      // First flush (Invalidate's): stall until the racing writer is
      // en route to the entry lock, then a beat longer so it is parked ON
      // the lock when we return and the erase re-check runs contended.
      std::unique_lock<std::mutex> lock(gate_mu);
      flush_started = true;
      gate_cv.notify_all();
      gate_cv.wait(lock, [&] { return writer_started; });
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return store.Flusher()(pid, profile);
  };
  GCache cache(ManualOptions(), SystemClock::Instance(), gated_flusher,
               store.Loader());
  cache
      .WithProfileMutable(7,
                          [](ProfileData& profile) {
                            profile.Add(kMinute, 1, 1, 1, CountVector{1}).ok();
                          })
      .ok();
  std::thread invalidator([&] { EXPECT_TRUE(cache.Invalidate(7).ok()); });
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(5),
                                 [&] { return flush_started; }));
    writer_started = true;
    gate_cv.notify_all();
  }
  // The racing write: lands either just before the erase re-check (the
  // entry re-dirties and Invalidate flushes again) or just after the erase
  // (the writer sees Entry::evicted, retries its lookup, and writes into a
  // fresh entry reloaded from the store). Both ways it must reach the store.
  ASSERT_TRUE(cache
                  .WithProfileMutable(7,
                                      [](ProfileData& profile) {
                                        profile
                                            .Add(kMinute, 1, 1, 2,
                                                 CountVector{1})
                                            .ok();
                                      })
                  .ok());
  invalidator.join();
  cache.FlushAll();
  // Both the original feature and the racing writer's made it out.
  EXPECT_EQ(store.Get(7).TotalFeatures(), 2u);
  EXPECT_EQ(store.flush_count(), 2);
}

TEST(GCacheTest, SinglePointSuccessDoesNotClearStoreHealth) {
  // Regression for health flapping: one lucky single-pid write-back landing
  // mid-outage used to clear store_unhealthy_ while batch flushes were
  // still failing. Point successes (Invalidate/eviction write-backs) now
  // need kPointHealthClearStreak in a row; batch passes clear immediately.
  FakeStore store;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  auto dirty = [&](ProfileId pid) {
    cache
        .WithProfileMutable(pid,
                            [](ProfileData& profile) {
                              profile.Add(kMinute, 1, 1, 1, CountVector{1})
                                  .ok();
                            })
        .ok();
  };
  for (ProfileId pid = 11; pid <= 14; ++pid) dirty(pid);
  store.SetFailFlushes(true);
  EXPECT_EQ(cache.FlushOnce(), 0u);
  ASSERT_TRUE(cache.StoreUnhealthy());
  store.SetFailFlushes(false);
  // Two successful point write-backs: still below the streak, still
  // unhealthy (this is exactly the flapping the old code exhibited).
  ASSERT_TRUE(cache.Invalidate(11).ok());
  EXPECT_TRUE(cache.StoreUnhealthy());
  ASSERT_TRUE(cache.Invalidate(12).ok());
  EXPECT_TRUE(cache.StoreUnhealthy());
  // A failure in between resets the streak: two more successes after it
  // still do not clear.
  store.SetFailFlushes(true);
  EXPECT_FALSE(cache.Invalidate(13).ok());
  store.SetFailFlushes(false);
  ASSERT_TRUE(cache.Invalidate(13).ok());
  ASSERT_TRUE(cache.Invalidate(14).ok());
  EXPECT_TRUE(cache.StoreUnhealthy());
  // Third consecutive point success finally clears it.
  dirty(15);
  ASSERT_TRUE(cache.Invalidate(15).ok());
  EXPECT_FALSE(cache.StoreUnhealthy());
  // Batch observations stay authoritative: one failing pass re-trips the
  // flag, one successful pass clears it with no streak needed.
  dirty(16);
  store.SetFailFlushes(true);
  EXPECT_EQ(cache.FlushOnce(), 0u);
  EXPECT_TRUE(cache.StoreUnhealthy());
  store.SetFailFlushes(false);
  EXPECT_EQ(cache.FlushOnce(), 1u);
  EXPECT_FALSE(cache.StoreUnhealthy());
}

TEST(GCacheTest, FlushThreadsRoundedToShardMultiple) {
  FakeStore store;
  GCacheOptions options = ManualOptions();
  options.dirty_shards = 4;
  options.flush_threads = 5;  // not a multiple; must round up to 8
  GCache cache(options, SystemClock::Instance(), store.Flusher(),
               store.Loader());
  EXPECT_EQ(cache.options().flush_threads % cache.options().dirty_shards, 0u);
  EXPECT_GE(cache.options().flush_threads, 5u);
}

// ------------------------------------------- WithProfileOffLockMutate ---

TEST(GCacheTest, OffLockMutateCommitsAndMarksDirty) {
  FakeStore store;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  ASSERT_TRUE(cache
                  .WithProfileMutable(1,
                                      [](ProfileData& profile) {
                                        profile
                                            .Add(kMinute, 1, 1, 7,
                                                 CountVector{1})
                                            .ok();
                                      })
                  .ok());
  cache.FlushAll();
  ASSERT_EQ(cache.DirtyCount(), 0u);
  ASSERT_TRUE(cache
                  .WithProfileOffLockMutate(1,
                                            [](ProfileData& profile) {
                                              profile
                                                  .Add(2 * kMinute, 1, 1, 8,
                                                       CountVector{3})
                                                  .ok();
                                              return true;
                                            })
                  .ok());
  // The committed pass re-dirtied the entry and the change is visible.
  EXPECT_EQ(cache.DirtyCount(), 1u);
  int64_t count = 0;
  ASSERT_TRUE(cache
                  .WithProfile(1,
                               [&](const ProfileData& profile) {
                                 count = profile.TotalFeatures();
                               })
                  .ok());
  EXPECT_EQ(count, 2);
}

TEST(GCacheTest, OffLockMutateNeverFaultsInNonResidentProfiles) {
  FakeStore store;
  {
    GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
                 store.Loader());
    cache
        .WithProfileMutable(5,
                            [](ProfileData& profile) {
                              profile.Add(kMinute, 1, 1, 1, CountVector{1})
                                  .ok();
                            })
        .ok();
    cache.FlushAll();
  }
  ASSERT_TRUE(store.Has(5));
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  const int loads_before = store.load_count();
  // Persisted but not resident: maintenance must not page it in — the
  // slices get compacted when real traffic loads the profile.
  Status status = cache.WithProfileOffLockMutate(
      5, [](ProfileData&) { return true; });
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(store.load_count(), loads_before);
  EXPECT_EQ(cache.EntryCount(), 0u);
}

TEST(GCacheTest, OffLockMutateRetriesWhenWriteLandsMidPass) {
  FakeStore store;
  MetricsRegistry metrics;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader(), &metrics);
  ASSERT_TRUE(cache
                  .WithProfileMutable(1,
                                      [](ProfileData& profile) {
                                        profile
                                            .Add(kMinute, 1, 1, 1,
                                                 CountVector{1})
                                            .ok();
                                      })
                  .ok());
  int passes = 0;
  ASSERT_TRUE(cache
                  .WithProfileOffLockMutate(
                      1,
                      [&](ProfileData& profile) {
                        ++passes;
                        if (passes == 1) {
                          // A serving write lands while the pass holds no
                          // lock: the stale snapshot must not win.
                          cache
                              .WithProfileMutable(
                                  1,
                                  [](ProfileData& p) {
                                    p.Add(3 * kMinute, 1, 1, 9, CountVector{2})
                                        .ok();
                                  })
                              .ok();
                        }
                        profile.Add(2 * kMinute, 1, 1, 5, CountVector{1}).ok();
                        return true;
                      })
                  .ok());
  EXPECT_EQ(passes, 2);
  EXPECT_EQ(metrics.GetCounter("compaction.overlap_stalls")->Value(), 1);
  // Both the racing write and the retried pass survive.
  size_t features = 0;
  ASSERT_TRUE(cache
                  .WithProfile(1,
                               [&](const ProfileData& profile) {
                                 features = profile.TotalFeatures();
                               })
                  .ok());
  EXPECT_EQ(features, 3u);  // fids 1, 9, 5
}

TEST(GCacheTest, OffLockMutateAbortsAfterMaxRetries) {
  FakeStore store;
  MetricsRegistry metrics;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader(), &metrics);
  ASSERT_TRUE(cache.WithProfileMutable(1, [](ProfileData&) {}).ok());
  int passes = 0;
  Status status = cache.WithProfileOffLockMutate(
      1,
      [&](ProfileData& profile) {
        ++passes;
        // Every pass races a fresh write: the epoch check must lose each
        // time and give up as Aborted instead of spinning forever.
        cache
            .WithProfileMutable(1,
                                [&](ProfileData& p) {
                                  p.Add(passes * kMinute, 1, 1,
                                        static_cast<FeatureId>(passes),
                                        CountVector{1})
                                      .ok();
                                })
            .ok();
        profile.Add(100 * kMinute, 1, 1, 99, CountVector{1}).ok();
        return true;
      },
      /*max_retries=*/1);
  EXPECT_TRUE(status.IsAborted());
  EXPECT_EQ(passes, 2);  // initial try + one retry
  EXPECT_EQ(metrics.GetCounter("compaction.overlap_stalls")->Value(), 2);
  // The stale snapshots never committed: only the racing writes are there.
  size_t features = 0;
  ASSERT_TRUE(cache
                  .WithProfile(1,
                               [&](const ProfileData& profile) {
                                 features = profile.TotalFeatures();
                               })
                  .ok());
  EXPECT_EQ(features, 2u);  // fids 1 and 2 from the two racing writes
}

TEST(GCacheTest, OffLockMutateAbandonedPassLeavesEntryClean) {
  FakeStore store;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  ASSERT_TRUE(cache
                  .WithProfileMutable(1,
                                      [](ProfileData& profile) {
                                        profile
                                            .Add(kMinute, 1, 1, 1,
                                                 CountVector{1})
                                            .ok();
                                      })
                  .ok());
  cache.FlushAll();
  ASSERT_EQ(cache.DirtyCount(), 0u);
  // work returns false ("nothing to do"): no commit, no dirty mark — even
  // though the pass scribbled on its private snapshot.
  ASSERT_TRUE(cache
                  .WithProfileOffLockMutate(
                      1,
                      [](ProfileData& profile) {
                        profile.Add(9 * kMinute, 1, 1, 42, CountVector{7})
                            .ok();
                        return false;
                      })
                  .ok());
  EXPECT_EQ(cache.DirtyCount(), 0u);
  size_t features = 0;
  ASSERT_TRUE(cache
                  .WithProfile(1,
                               [&](const ProfileData& profile) {
                                 features = profile.TotalFeatures();
                               })
                  .ok());
  EXPECT_EQ(features, 1u);
}

TEST(GCacheTest, LongOffLockMutateDoesNotBlockFlush) {
  // The point of the collect/work/commit split: a long compaction pass over
  // a profile holds no lock while it works, so a dirty-shard flush of that
  // same profile proceeds to the store instead of queueing behind it.
  FakeStore store;
  GCache cache(ManualOptions(), SystemClock::Instance(), store.Flusher(),
               store.Loader());
  ASSERT_TRUE(cache
                  .WithProfileMutable(1,
                                      [](ProfileData& profile) {
                                        profile
                                            .Add(kMinute, 1, 1, 1,
                                                 CountVector{1})
                                            .ok();
                                      })
                  .ok());
  ASSERT_EQ(cache.DirtyCount(), 1u);
  std::atomic<bool> in_pass{false};
  std::atomic<bool> release{false};
  std::thread compactor_thread([&] {
    cache
        .WithProfileOffLockMutate(1,
                                  [&](ProfileData& profile) {
                                    in_pass.store(true);
                                    while (!release.load()) {
                                      std::this_thread::yield();
                                    }
                                    profile
                                        .Add(2 * kMinute, 1, 1, 2,
                                             CountVector{1})
                                        .ok();
                                    return true;
                                  })
        .ok();
  });
  while (!in_pass.load()) std::this_thread::yield();
  // Compaction is mid-pass and parked; the flush must still drain.
  EXPECT_EQ(cache.FlushOnce(), 1u);
  EXPECT_TRUE(store.Has(1));
  EXPECT_EQ(cache.DirtyCount(), 0u);
  release.store(true);
  compactor_thread.join();
  // The pass committed afterwards (flush does not bump the mutation epoch)
  // and re-dirtied the entry with the merged result.
  EXPECT_EQ(cache.DirtyCount(), 1u);
  size_t features = 0;
  ASSERT_TRUE(cache
                  .WithProfile(1,
                               [&](const ProfileData& profile) {
                                 features = profile.TotalFeatures();
                               })
                  .ok());
  EXPECT_EQ(features, 2u);
}

}  // namespace
}  // namespace ips
