#include "server/persistence.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "kvstore/mem_kv_store.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;

ProfileData MakeProfile(int slices, int features_per_slice) {
  ProfileData profile(kMinute);
  const TimestampMs base = 100 * kMillisPerDay;
  for (int s = 0; s < slices; ++s) {
    for (int f = 0; f < features_per_slice; ++f) {
      EXPECT_TRUE(profile
                      .Add(base + s * kMinute, 1, 1,
                           static_cast<FeatureId>(f + 1),
                           CountVector{1, 2})
                      .ok());
    }
  }
  return profile;
}

int64_t ReadCount(const ProfileData& profile, TimestampMs ts, FeatureId fid) {
  for (const auto& slice : profile.slices()) {
    if (slice.Contains(ts)) {
      const auto* stats = slice.FindSlot(1)->Find(1);
      const auto* stat = stats->Find(fid);
      return stat == nullptr ? -1 : stat->counts[0];
    }
  }
  return -1;
}

class PersisterModeTest : public ::testing::TestWithParam<PersistenceMode> {};

TEST_P(PersisterModeTest, FlushLoadRoundTrips) {
  MemKvStore kv;
  PersisterOptions options;
  options.mode = GetParam();
  Persister persister("t", &kv, options);
  ProfileData profile = MakeProfile(10, 8);
  ASSERT_TRUE(persister.Flush(42, profile).ok());
  auto loaded = persister.Load(42);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->SliceCount(), profile.SliceCount());
  EXPECT_EQ(loaded->TotalFeatures(), profile.TotalFeatures());
  EXPECT_EQ(loaded->LastActionMs(), profile.LastActionMs());
  EXPECT_EQ(ReadCount(*loaded, 100 * kMillisPerDay, 3), 1);
}

TEST_P(PersisterModeTest, LoadMissingIsNotFound) {
  MemKvStore kv;
  PersisterOptions options;
  options.mode = GetParam();
  Persister persister("t", &kv, options);
  EXPECT_TRUE(persister.Load(999).status().IsNotFound());
}

TEST_P(PersisterModeTest, EraseRemovesEverything) {
  MemKvStore kv;
  PersisterOptions options;
  options.mode = GetParam();
  Persister persister("t", &kv, options);
  ASSERT_TRUE(persister.Flush(1, MakeProfile(5, 5)).ok());
  ASSERT_GT(kv.KeyCount(), 0u);
  ASSERT_TRUE(persister.Erase(1).ok());
  EXPECT_EQ(kv.KeyCount(), 0u);
  EXPECT_TRUE(persister.Load(1).status().IsNotFound());
}

TEST_P(PersisterModeTest, LoadBatchAlignsAndRoundTrips) {
  MemKvStore kv;
  PersisterOptions options;
  options.mode = GetParam();
  options.split_threshold_bytes = 0;  // split mode splits even small profiles
  Persister persister("t", &kv, options);
  ASSERT_TRUE(persister.Flush(1, MakeProfile(10, 8)).ok());
  ASSERT_TRUE(persister.Flush(2, MakeProfile(3, 2)).ok());

  auto results = persister.LoadBatch({2, 777, 1});
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_EQ(results[0]->SliceCount(), 3u);
  EXPECT_TRUE(results[1].status().IsNotFound());
  ASSERT_TRUE(results[2].ok()) << results[2].status().ToString();
  EXPECT_EQ(results[2]->SliceCount(), 10u);
  EXPECT_EQ(results[2]->TotalFeatures(), MakeProfile(10, 8).TotalFeatures());
}

TEST(PersisterTest, BulkLoadBatchIsOneMultiGet) {
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kBulk;
  Persister persister("t", &kv, options);
  std::vector<ProfileId> pids;
  for (ProfileId pid = 1; pid <= 16; ++pid) {
    ASSERT_TRUE(persister.Flush(pid, MakeProfile(4, 4)).ok());
    pids.push_back(pid);
  }
  const int64_t multi_gets_before = kv.MultiGetCalls();
  const int64_t point_reads_before = kv.PointReadCalls();
  auto results = persister.LoadBatch(pids);
  for (const auto& result : results) ASSERT_TRUE(result.ok());
  EXPECT_EQ(kv.MultiGetCalls() - multi_gets_before, 1);
  EXPECT_EQ(kv.PointReadCalls() - point_reads_before, 0);
}

TEST(PersisterTest, SplitLoadBatchCoalescesSliceValues) {
  // Slice-split metas stay on the versioned XGet protocol (per-pid point
  // reads), but every slice VALUE across every profile rides one MultiGet.
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kSliceSplit;
  options.split_threshold_bytes = 0;
  Persister persister("t", &kv, options);
  std::vector<ProfileId> pids;
  for (ProfileId pid = 1; pid <= 8; ++pid) {
    ASSERT_TRUE(persister.Flush(pid, MakeProfile(6, 4)).ok());
    pids.push_back(pid);
  }
  const int64_t multi_gets_before = kv.MultiGetCalls();
  auto results = persister.LoadBatch(pids);
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->SliceCount(), 6u);
  }
  EXPECT_EQ(kv.MultiGetCalls() - multi_gets_before, 1);
}

INSTANTIATE_TEST_SUITE_P(Modes, PersisterModeTest,
                         ::testing::Values(PersistenceMode::kBulk,
                                           PersistenceMode::kSliceSplit));

TEST(PersisterTest, BulkModeUsesOneKey) {
  MemKvStore kv;
  Persister persister("t", &kv, {});
  ASSERT_TRUE(persister.Flush(1, MakeProfile(20, 5)).ok());
  EXPECT_EQ(kv.KeyCount(), 1u);
}

TEST(PersisterTest, SplitModeUsesMetaPlusSliceKeys) {
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kSliceSplit;
  Persister persister("t", &kv, options);
  ASSERT_TRUE(persister.Flush(1, MakeProfile(20, 5)).ok());
  EXPECT_EQ(kv.KeyCount(), 21u);  // 20 slices + meta
  std::string value;
  EXPECT_TRUE(kv.Get(persister.MetaKey(1), &value).ok());
}

TEST(PersisterTest, SplitThresholdKeepsSmallProfilesBulk) {
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kSliceSplit;
  options.split_threshold_bytes = 1 << 20;  // everything is "small"
  Persister persister("t", &kv, options);
  ASSERT_TRUE(persister.Flush(1, MakeProfile(5, 5)).ok());
  EXPECT_EQ(kv.KeyCount(), 1u);  // bulk key only
  auto loaded = persister.Load(1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->SliceCount(), 5u);
}

TEST(PersisterTest, GrowingProfileMigratesBulkToSplit) {
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kSliceSplit;
  options.split_threshold_bytes = 600;
  Persister persister("t", &kv, options);
  // Small profile: bulk.
  ASSERT_TRUE(persister.Flush(1, MakeProfile(2, 2)).ok());
  EXPECT_EQ(kv.KeyCount(), 1u);
  // Grown profile: split; the stale bulk key must be retired.
  ASSERT_TRUE(persister.Flush(1, MakeProfile(30, 10)).ok());
  std::string value;
  EXPECT_TRUE(kv.Get(persister.BulkKey(1), &value).IsNotFound());
  auto loaded = persister.Load(1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->SliceCount(), 30u);
}

TEST(PersisterTest, ShrinkingProfileMigratesSplitToBulk) {
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kSliceSplit;
  options.split_threshold_bytes = 600;
  Persister persister("t", &kv, options);
  ASSERT_TRUE(persister.Flush(1, MakeProfile(30, 10)).ok());
  ASSERT_GT(kv.KeyCount(), 1u);
  // After heavy compaction the profile is small again.
  ASSERT_TRUE(persister.Flush(1, MakeProfile(1, 2)).ok());
  auto loaded = persister.Load(1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->SliceCount(), 1u);
  std::string value;
  EXPECT_TRUE(kv.Get(persister.MetaKey(1), &value).IsNotFound());
}

TEST(PersisterTest, SplitGarbageCollectsDroppedSlices) {
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kSliceSplit;
  Persister persister("t", &kv, options);
  ASSERT_TRUE(persister.Flush(1, MakeProfile(20, 3)).ok());
  const size_t keys_before = kv.KeyCount();
  // Compaction shrank the slice list to 4.
  ASSERT_TRUE(persister.Flush(1, MakeProfile(4, 3)).ok());
  EXPECT_LT(kv.KeyCount(), keys_before);
  EXPECT_EQ(kv.KeyCount(), 5u);  // 4 slices + meta
}

TEST(PersisterTest, ConcurrentWritersResolveViaVersionProtocol) {
  // Two Persister instances (two IPS nodes) write the same profile; the
  // version-checked meta update forces the stale writer through the reload
  // path and both eventually succeed (Fig 14).
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kSliceSplit;
  Persister node_a("t", &kv, options);
  Persister node_b("t", &kv, options);

  ASSERT_TRUE(node_a.Flush(1, MakeProfile(3, 3)).ok());
  // b never loaded; its held version is 0 — stale. The retry logic must
  // recover without caller intervention.
  ASSERT_TRUE(node_b.Flush(1, MakeProfile(5, 3)).ok());
  auto loaded = node_a.Load(1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->SliceCount(), 5u);
  // a's held version is now stale in turn; flushing must still work.
  ASSERT_TRUE(node_a.Flush(1, MakeProfile(2, 3)).ok());
  auto final_load = node_b.Load(1);
  ASSERT_TRUE(final_load.ok());
  EXPECT_EQ(final_load->SliceCount(), 2u);
}

TEST(PersisterTest, SplitSkipsUnchangedSlices) {
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kSliceSplit;
  Persister persister("t", &kv, options);
  ProfileData profile = MakeProfile(60, 40);
  ASSERT_TRUE(persister.Flush(1, profile).ok());
  const int64_t after_initial = kv.TotalBytesWritten();

  // Touch only the newest slice; the re-flush must rewrite just that slice
  // plus the meta record — the point of the fine-grained mode.
  ASSERT_TRUE(
      profile.Add(profile.NewestMs() - 1, 1, 1, 9999, CountVector{1}).ok());
  ASSERT_TRUE(persister.Flush(1, profile).ok());
  const int64_t steady_delta = kv.TotalBytesWritten() - after_initial;
  // Reference: a persister without checksum memory rewrites everything.
  Persister amnesiac("t", &kv, options);
  const int64_t before_full = kv.TotalBytesWritten();
  ASSERT_TRUE(amnesiac.Flush(1, profile).ok());
  const int64_t full_delta = kv.TotalBytesWritten() - before_full;
  EXPECT_LT(steady_delta, full_delta / 2);

  // An identical flush writes only the meta (no slice changed).
  const int64_t before_noop = kv.TotalBytesWritten();
  ASSERT_TRUE(persister.Flush(1, profile).ok());
  const int64_t noop_delta = kv.TotalBytesWritten() - before_noop;
  EXPECT_LT(noop_delta, steady_delta);

  // Everything still loads back correctly after skipped writes.
  auto loaded = persister.Load(1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->TotalFeatures(), profile.TotalFeatures());
}

TEST(PersisterTest, SplitSkipStateSurvivesReload) {
  // A fresh Persister (process restart) has no checksum memory: it must
  // rebuild it from a Load and still converge to skipping.
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kSliceSplit;
  {
    Persister persister("t", &kv, options);
    ASSERT_TRUE(persister.Flush(1, MakeProfile(10, 5)).ok());
  }
  Persister restarted("t", &kv, options);
  auto loaded = restarted.Load(1);
  ASSERT_TRUE(loaded.ok());
  const int64_t before = kv.TotalBytesWritten();
  ASSERT_TRUE(restarted.Flush(1, *loaded).ok());
  // All slices unchanged since the load: only the meta is rewritten.
  const int64_t delta = kv.TotalBytesWritten() - before;
  EXPECT_LT(delta, 200);
}

TEST(PersisterTest, KeysAreNamespacedByTable) {
  MemKvStore kv;
  Persister a("table_a", &kv, {});
  Persister b("table_b", &kv, {});
  ASSERT_TRUE(a.Flush(1, MakeProfile(1, 1)).ok());
  EXPECT_TRUE(b.Load(1).status().IsNotFound());
  EXPECT_NE(a.BulkKey(1), b.BulkKey(1));
}

TEST(PersisterTest, FallbackServesDegradedReadWhenPrimaryDown) {
  MemKvStore primary;
  MemKvStore replica;
  // Populate both stores (standing in for the replication the KV cluster
  // does internally), then take the primary down.
  PersisterOptions options;
  options.fallback_kv = &replica;
  Persister persister("t", &primary, options);
  ASSERT_TRUE(persister.Flush(1, MakeProfile(4, 3)).ok());
  {
    Persister replica_writer("t", &replica, {});
    ASSERT_TRUE(replica_writer.Flush(1, MakeProfile(4, 3)).ok());
  }
  primary.SetDown(true);
  bool degraded = false;
  auto loaded = persister.Load(1, &degraded);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(degraded);
  EXPECT_EQ(loaded->SliceCount(), 4u);
  // Primary recovers: reads are healthy again and flushing still works.
  primary.SetDown(false);
  degraded = true;
  ASSERT_TRUE(persister.Load(1, &degraded).ok());
  EXPECT_FALSE(degraded);
  EXPECT_TRUE(persister.Flush(1, MakeProfile(5, 3)).ok());
}

TEST(PersisterTest, FallbackNotFoundSurfacesPrimaryError) {
  // A lagging replica may legitimately miss a profile that exists on the
  // primary: NotFound from the fallback is inconclusive, so the caller gets
  // the primary's Unavailable, never a false "no such profile".
  MemKvStore primary;
  MemKvStore replica;  // empty — the profile never replicated
  PersisterOptions options;
  options.fallback_kv = &replica;
  Persister persister("t", &primary, options);
  ASSERT_TRUE(persister.Flush(1, MakeProfile(2, 2)).ok());
  primary.SetDown(true);
  bool degraded = false;
  auto loaded = persister.Load(1, &degraded);
  EXPECT_TRUE(loaded.status().IsUnavailable());
  EXPECT_FALSE(degraded);
}

TEST(PersisterTest, LoadBatchFallsBackPerProfile) {
  MemKvStore primary;
  MemKvStore replica;
  PersisterOptions options;
  options.fallback_kv = &replica;
  Persister persister("t", &primary, options);
  ASSERT_TRUE(persister.Flush(1, MakeProfile(3, 2)).ok());
  ASSERT_TRUE(persister.Flush(2, MakeProfile(6, 2)).ok());
  {
    // Only pid 1 made it to the replica before the outage.
    Persister replica_writer("t", &replica, {});
    ASSERT_TRUE(replica_writer.Flush(1, MakeProfile(3, 2)).ok());
  }
  primary.SetDown(true);
  std::vector<bool> degraded;
  auto results = persister.LoadBatch({1, 2, 404}, &degraded);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_EQ(degraded.size(), 3u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_EQ(results[0]->SliceCount(), 3u);
  EXPECT_TRUE(degraded[0]);
  // pid 2 never replicated: the primary's outage surfaces, not NotFound.
  EXPECT_TRUE(results[1].status().IsUnavailable());
  EXPECT_FALSE(degraded[1]);
  // pid 404 exists nowhere; with the primary down that is indistinguishable
  // from an unreplicated profile, so it also reports the outage.
  EXPECT_FALSE(results[2].ok());
}

TEST(PersisterTest, StoreBatchRoundTripsMixedModes) {
  // One batch holding both small (bulk) and large (split) profiles: every
  // pid must round-trip regardless of which representation it lands in.
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kSliceSplit;
  options.split_threshold_bytes = 600;
  Persister persister("t", &kv, options);
  ProfileData small = MakeProfile(2, 2);
  ProfileData large = MakeProfile(30, 10);
  auto statuses = persister.StoreBatch({1, 2}, {&small, &large});
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].ok()) << statuses[0].ToString();
  EXPECT_TRUE(statuses[1].ok()) << statuses[1].ToString();
  auto loaded_small = persister.Load(1);
  ASSERT_TRUE(loaded_small.ok());
  EXPECT_EQ(loaded_small->SliceCount(), 2u);
  auto loaded_large = persister.Load(2);
  ASSERT_TRUE(loaded_large.ok());
  EXPECT_EQ(loaded_large->SliceCount(), 30u);
}

TEST(PersisterTest, BulkStoreBatchIsOneMultiSet) {
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kBulk;
  Persister persister("t", &kv, options);
  std::vector<ProfileData> profiles;
  std::vector<ProfileId> pids;
  std::vector<const ProfileData*> ptrs;
  for (ProfileId pid = 1; pid <= 16; ++pid) {
    profiles.push_back(MakeProfile(4, 4));
    pids.push_back(pid);
  }
  for (const auto& profile : profiles) ptrs.push_back(&profile);
  const int64_t multi_sets_before = kv.MultiSetCalls();
  const int64_t point_writes_before = kv.PointWriteCalls();
  auto statuses = persister.StoreBatch(pids, ptrs);
  for (const auto& status : statuses) ASSERT_TRUE(status.ok());
  EXPECT_EQ(kv.MultiSetCalls() - multi_sets_before, 1);
  EXPECT_EQ(kv.PointWriteCalls() - point_writes_before, 0);
}

TEST(PersisterTest, StoreBatchResolvesGenerationConflict) {
  // Fig 14 under batching: node_b's held meta version is stale when its
  // batch commits; the version-checked XSet must bounce, refresh, and retry
  // without surfacing an error.
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kSliceSplit;
  options.split_threshold_bytes = 0;
  Persister node_a("t", &kv, options);
  Persister node_b("t", &kv, options);
  ASSERT_TRUE(node_b.Flush(1, MakeProfile(3, 3)).ok());
  // node_a bumps the meta behind node_b's back.
  ASSERT_TRUE(node_a.Flush(1, MakeProfile(4, 3)).ok());
  ProfileData update = MakeProfile(5, 3);
  auto statuses = node_b.StoreBatch({1}, {&update});
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].ok()) << statuses[0].ToString();
  auto loaded = node_a.Load(1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->SliceCount(), 5u);
}

TEST(PersisterTest, StoreBatchPartialFailureKeepsOldMetaReadable) {
  // When the slice MultiSet partially fails, the meta must NOT move: the
  // previous generation stays fully readable and the next flush rewrites
  // the landed slices (their checksums were never remembered).
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kSliceSplit;
  options.split_threshold_bytes = 0;
  Persister persister("t", &kv, options);
  ASSERT_TRUE(persister.Flush(1, MakeProfile(3, 3)).ok());

  kv.SetFailureProbability(1.0);
  ProfileData update = MakeProfile(6, 3);
  auto statuses = persister.StoreBatch({1}, {&update});
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].IsUnavailable());
  kv.SetFailureProbability(0.0);

  auto loaded = persister.Load(1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->SliceCount(), 3u);  // old generation, not the torn one

  // Recovery: the same batch succeeds once the store heals.
  statuses = persister.StoreBatch({1}, {&update});
  ASSERT_TRUE(statuses[0].ok()) << statuses[0].ToString();
  loaded = persister.Load(1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->SliceCount(), 6u);
}

TEST(PersisterTest, FlushIsBatchOfOne) {
  // Flush delegates to StoreBatch: a single-profile flush must ride the
  // batched write path (one MultiSet), not per-key point writes.
  MemKvStore kv;
  PersisterOptions options;
  options.mode = PersistenceMode::kBulk;
  Persister persister("t", &kv, options);
  const int64_t multi_sets_before = kv.MultiSetCalls();
  ASSERT_TRUE(persister.Flush(1, MakeProfile(2, 2)).ok());
  EXPECT_EQ(kv.MultiSetCalls() - multi_sets_before, 1);
}

TEST(PersisterTest, SurvivesKvFailuresWithErrorNotCorruption) {
  MemKvOptions kv_options;
  kv_options.failure_probability = 1.0;
  MemKvStore kv(kv_options);
  Persister persister("t", &kv, {});
  Status status = persister.Flush(1, MakeProfile(2, 2));
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_TRUE(persister.Load(1).status().IsUnavailable());
}

}  // namespace
}  // namespace ips
