// Full-pipeline integration tests: raw event streams -> windowed join ->
// message log -> ingestion job -> unified client -> multi-region IPS
// deployment -> feature queries, with compaction and persistence running
// underneath. This is the end-to-end data path of Fig 5.
#include <optional>
#include <set>

#include <gtest/gtest.h>

#include "cluster/client.h"
#include "cluster/deployment.h"
#include "common/clock.h"
#include "ingest/ingestion_job.h"
#include "ingest/message_log.h"
#include "ingest/stream_join.h"
#include "ingest/workload.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kHour = kMillisPerHour;
constexpr int64_t kDay = kMillisPerDay;

DeploymentOptions PipelineDeployment() {
  DeploymentOptions options;
  options.regions = {{"lf", 2, /*is_primary=*/true},
                     {"hl", 1, /*is_primary=*/false}};
  options.instance.start_background_threads = false;
  options.instance.cache.start_background_threads = false;
  options.instance.compaction.synchronous = true;
  options.instance.compaction.min_interval_ms = 0;
  options.instance.isolation_enabled = false;
  options.instance.cache.write_granularity_ms = kMinute;
  options.kv.replication_lag_ms = 100;
  return options;
}

TableSchema PipelineSchema() {
  TableSchema schema = DefaultTableSchema("user_profile");
  schema.write_granularity_ms = kMinute;
  return schema;
}

TEST(IntegrationTest, EventsToFeaturesEndToEnd) {
  ManualClock clock(100 * kDay);
  Deployment deployment(PipelineDeployment(), &clock);
  ASSERT_TRUE(deployment.CreateTableEverywhere(PipelineSchema()).ok());

  IpsClientOptions client_options;
  client_options.caller = "pipeline";
  client_options.local_region = "lf";
  client_options.failover_regions = {"hl"};
  IpsClient client(client_options, &deployment);

  MessageLog log(4);
  StreamJoinOptions join_options;
  join_options.window_ms = kMinute;
  join_options.num_actions = 4;
  StreamJoiner joiner(join_options, [&](const Instance& instance) {
    log.Append("instances", instance.uid, EncodeInstance(instance));
  });

  WorkloadOptions workload_options;
  workload_options.num_users = 500;
  workload_options.seed = 77;
  WorkloadGenerator workload(workload_options);

  // One hour of simulated traffic at ~1 interaction per second.
  std::set<ProfileId> touched;
  for (int s = 0; s < 3600; s += 10) {
    auto group = workload.NextEventGroup(clock.NowMs());
    touched.insert(group.impression.uid);
    joiner.OnImpression(group.impression);
    joiner.OnFeature(group.feature);
    for (const auto& action : group.actions) joiner.OnAction(action);
    clock.AdvanceMs(10'000);
    deployment.HeartbeatAll();  // instances heartbeat Consul while alive
    joiner.AdvanceWatermark(clock.NowMs());
  }
  joiner.AdvanceWatermark(clock.NowMs() + 2 * kMinute);

  IngestionJobOptions job_options;
  job_options.table = "user_profile";
  IngestionJob job(job_options, &log, &client);
  const size_t written = job.PollOnce();
  EXPECT_GT(written, 300u);
  EXPECT_EQ(job.error_count(), 0);

  // Every touched user must have at least one queryable feature in some
  // slot over the last 2 hours.
  size_t users_with_features = 0;
  for (ProfileId uid : touched) {
    size_t total = 0;
    for (SlotId slot = 0; slot < workload_options.num_slots; ++slot) {
      auto result = client.GetProfileTopK("user_profile", uid, slot,
                                          std::nullopt,
                                          TimeRange::Current(2 * kHour),
                                          SortBy::kActionCount, 0, 100);
      ASSERT_TRUE(result.ok());
      total += result->features.size();
    }
    if (total > 0) ++users_with_features;
  }
  EXPECT_GT(users_with_features, touched.size() * 9 / 10);
}

TEST(IntegrationTest, WriteQueryCompactPersistCycle) {
  ManualClock clock(100 * kDay);
  Deployment deployment(PipelineDeployment(), &clock);
  ASSERT_TRUE(deployment.CreateTableEverywhere(PipelineSchema()).ok());
  IpsClientOptions client_options;
  client_options.local_region = "lf";
  client_options.failover_regions = {"hl"};
  IpsClient client(client_options, &deployment);

  // Simulate 3 days of one user's activity: 20 actions per day.
  const ProfileId uid = 4242;
  for (int day = 0; day < 3; ++day) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(client
                      .AddProfile("user_profile", uid,
                                  clock.NowMs() - kMinute, 1, 1,
                                  static_cast<FeatureId>(day * 100 + i + 1),
                                  CountVector{1, 0, 0, 0})
                      .ok());
      clock.AdvanceMs(30 * kMinute);
      deployment.HeartbeatAll();
    }
    clock.AdvanceMs(14 * kHour);
    deployment.HeartbeatAll();
  }

  // Queries over several windows see monotone-decreasing feature counts.
  auto nodes = deployment.NodesInRegion("lf");
  size_t day1, day2, all;
  {
    auto r = client.GetProfileTopK("user_profile", uid, 1, std::nullopt,
                                   TimeRange::Current(kDay),
                                   SortBy::kActionCount, 0, 0);
    ASSERT_TRUE(r.ok());
    day1 = r->features.size();
  }
  {
    auto r = client.GetProfileTopK("user_profile", uid, 1, std::nullopt,
                                   TimeRange::Current(2 * kDay),
                                   SortBy::kActionCount, 0, 0);
    ASSERT_TRUE(r.ok());
    day2 = r->features.size();
  }
  {
    auto r = client.GetProfileTopK("user_profile", uid, 1, std::nullopt,
                                   TimeRange::Current(30 * kDay),
                                   SortBy::kActionCount, 0, 0);
    ASSERT_TRUE(r.ok());
    all = r->features.size();
  }
  EXPECT_LE(day1, day2);
  EXPECT_LE(day2, all);
  EXPECT_EQ(all, 60u);

  // Flush everything, fail the serving region, and verify the failover
  // region still answers (its own replica took the same writes).
  for (auto* node : nodes) node->instance().FlushAll();
  deployment.FailRegion("lf");
  client.RefreshView();
  auto result = client.GetProfileTopK("user_profile", uid, 1, std::nullopt,
                                      TimeRange::Current(30 * kDay),
                                      SortBy::kActionCount, 0, 0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->features.size(), 60u);
}

TEST(IntegrationTest, ColdRestartRecoversFromPersistentStore) {
  ManualClock clock(100 * kDay);
  MemKvStore kv;

  IpsInstanceOptions options;
  options.start_background_threads = false;
  options.cache.start_background_threads = false;
  options.compaction.synchronous = true;
  options.isolation_enabled = false;
  options.cache.write_granularity_ms = kMinute;
  options.persistence.mode = PersistenceMode::kSliceSplit;
  options.persistence.split_threshold_bytes = 256;

  {
    IpsInstance instance(options, &kv, &clock);
    ASSERT_TRUE(instance.CreateTable(PipelineSchema()).ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(instance
                      .AddProfile("w", "user_profile", 1,
                                  clock.NowMs() - (i + 1) * kMinute, 1, 1,
                                  static_cast<FeatureId>(i % 25 + 1),
                                  CountVector{1})
                      .ok());
    }
    instance.FlushAll();
  }
  ASSERT_GT(kv.KeyCount(), 1u);  // slice-split representation

  // Cold restart: a new instance over the same KV serves the same answers.
  IpsInstance restarted(options, &kv, &clock);
  ASSERT_TRUE(restarted.CreateTable(PipelineSchema()).ok());
  auto result = restarted.GetProfileTopK("w", "user_profile", 1, 1,
                                         std::nullopt,
                                         TimeRange::Current(kDay),
                                         SortBy::kActionCount, 0, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->features.size(), 25u);
  int64_t total = 0;
  for (const auto& f : result->features) total += f.counts[0];
  EXPECT_EQ(total, 200);
}

TEST(IntegrationTest, YearLongReplayStaysBoundedWithCompaction) {
  // Condensed version of the Section III-D memory argument: a year of
  // activity with the production ladder keeps the slice count near the
  // paper's observed average (~62) instead of growing unboundedly.
  ManualClock clock(0);
  MemKvStore kv;
  IpsInstanceOptions options;
  options.start_background_threads = false;
  options.cache.start_background_threads = false;
  options.compaction.synchronous = true;
  options.compaction.min_interval_ms = 0;
  options.isolation_enabled = false;
  options.cache.write_granularity_ms = kMinute;
  IpsInstance instance(options, &kv, &clock);
  TableSchema schema = PipelineSchema();  // Listing 3 ladder + 365d truncate
  // Disable the (deliberately lossy) Shrink so the exact-count invariant of
  // Compact/Truncate is checkable; the ladder alone must bound the slices.
  schema.shrink.default_retain = 0;
  schema.shrink.retain_per_slot.clear();
  ASSERT_TRUE(instance.CreateTable(schema).ok());

  Rng rng(3);
  clock.SetMs(kDay);  // start one day in
  // 360 days, 8 actions per day.
  for (int day = 0; day < 360; ++day) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(instance
                      .AddProfile("u", "user_profile", 99,
                                  clock.NowMs() - kMinute, 1, 1,
                                  rng.Uniform(300) + 1, CountVector{1})
                      .ok());
      clock.AdvanceMs(2 * kHour);
    }
    clock.AdvanceMs(8 * kHour);
  }
  instance.DrainCompactions();

  auto result = instance.GetProfileTopK("u", "user_profile", 99, 1,
                                        std::nullopt,
                                        TimeRange::Current(365 * kDay),
                                        SortBy::kActionCount, 0, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->features.size(), 0u);
  // Without compaction there would be ~2880 slices; the ladder keeps it
  // within the same order as the paper's reported average of 62.
  EXPECT_LT(result->slices_scanned, 150u);
  int64_t total = 0;
  for (const auto& f : result->features) total += f.counts[0];
  EXPECT_EQ(total, 360 * 8);  // Compact never loses counts
}

}  // namespace
}  // namespace ips
