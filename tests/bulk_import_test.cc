#include "ingest/bulk_import.h"

#include <optional>

#include <gtest/gtest.h>

#include "common/clock.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;

class BulkImportTest : public ::testing::Test {
 protected:
  BulkImportTest() : clock_(100 * kDay) {
    DeploymentOptions options;
    options.regions = {{"lf", 1, /*is_primary=*/true}};
    options.instance.start_background_threads = false;
    options.instance.cache.start_background_threads = false;
    options.instance.compaction.synchronous = true;
    options.instance.isolation_enabled = false;
    options.instance.cache.write_granularity_ms = kMinute;
    options.discovery_ttl_ms = 365 * kDay;
    deployment_ = std::make_unique<Deployment>(options, &clock_);
    EXPECT_TRUE(deployment_
                    ->CreateTableEverywhere(
                        DefaultTableSchema("user_profile"))
                    .ok());
    IpsClientOptions client_options;
    client_options.caller = "online";
    client_options.local_region = "lf";
    client_ = std::make_unique<IpsClient>(client_options, deployment_.get());
  }

  std::vector<Instance> HistoricalInstances(int count) {
    std::vector<Instance> out;
    for (int i = 0; i < count; ++i) {
      Instance instance;
      instance.uid = 1 + (i % 10);
      instance.item_id = 1000 + i;
      instance.timestamp = clock_.NowMs() - 60 * kDay + i * kMinute;
      instance.slot = 1;
      instance.type = 1;
      instance.counts = CountVector{1, 0, 0, 0};
      out.push_back(instance);
    }
    return out;
  }

  IpsInstance& Node() {
    return deployment_->NodesInRegion("lf")[0]->instance();
  }

  ManualClock clock_;
  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<IpsClient> client_;
};

TEST_F(BulkImportTest, ImportsEverythingAndRestoresIsolation) {
  ASSERT_FALSE(Node().IsolationEnabled());
  BulkImporter importer({}, client_.get(), deployment_.get(), &clock_);
  size_t last_progress = 0;
  auto report = importer.Run(HistoricalInstances(500),
                             [&](size_t processed) {
                               EXPECT_GT(processed, last_progress);
                               last_progress = processed;
                             });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->imported, 500u);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(last_progress, 500u);
  // The job toggled isolation on, then back off (draining the buffers).
  EXPECT_FALSE(Node().IsolationEnabled());

  // All historical data is queryable with a 90-day window.
  auto result = client_->GetProfileTopK("user_profile", 1, 1, std::nullopt,
                                        TimeRange::Current(90 * kDay),
                                        SortBy::kActionCount, 0, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->features.size(), 50u);  // 500 instances over 10 users
}

TEST_F(BulkImportTest, UnknownTableRejectedUpfront) {
  BulkImportOptions options;
  options.table = "nope";
  BulkImporter importer(options, client_.get(), deployment_.get(), &clock_);
  auto report = importer.Run(HistoricalInstances(3));
  EXPECT_TRUE(report.status().IsNotFound());
}

TEST_F(BulkImportTest, QuotaPacesTheJobWithBackoff) {
  // 100 qps quota for the import caller; manual clock advances via the
  // job's own backoff sleeps, refilling tokens.
  Node().quota().SetQuota("bulk-import", 100.0);
  BulkImportOptions options;
  options.backoff_ms = 100;  // refills 10 tokens per backoff
  BulkImporter importer(options, client_.get(), deployment_.get(), &clock_);
  auto report = importer.Run(HistoricalInstances(300));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->imported, 300u);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_GT(report->quota_backoffs, 0u);  // it actually got paced

  // Online traffic was never throttled by the job's quota.
  EXPECT_TRUE(client_
                  ->AddProfile("user_profile", 77, clock_.NowMs() - kMinute,
                               1, 1, 5, CountVector{1})
                  .ok());
}

TEST_F(BulkImportTest, GivesUpAfterRetryLimit) {
  Node().quota().SetQuota("bulk-import", 0.000001);  // effectively zero
  Node().quota().Check("bulk-import").ok();          // drain the bucket
  BulkImportOptions options;
  options.retry_limit = 2;
  options.backoff_ms = 1;
  BulkImporter importer(options, client_.get(), deployment_.get(), &clock_);
  auto report = importer.Run(HistoricalInstances(5));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->imported, 0u);
  EXPECT_EQ(report->failed, 5u);
}

TEST_F(BulkImportTest, ManageIsolationFalseLeavesSwitchAlone) {
  BulkImportOptions options;
  options.manage_isolation = false;
  BulkImporter importer(options, client_.get(), deployment_.get(), &clock_);
  ASSERT_FALSE(Node().IsolationEnabled());
  auto report = importer.Run(HistoricalInstances(10));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(Node().IsolationEnabled());
}

}  // namespace
}  // namespace ips
