#include "core/profile_data.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;

CountVector One() { return CountVector{1}; }

TEST(ProfileDataTest, FirstAddCreatesAlignedSlice) {
  ProfileData profile(kMinute);
  ASSERT_TRUE(profile.Add(90'500, 1, 2, 3, One()).ok());
  ASSERT_EQ(profile.SliceCount(), 1u);
  const Slice& slice = profile.slices().front();
  EXPECT_EQ(slice.start_ms(), 60'000);
  EXPECT_EQ(slice.end_ms(), 120'000);
  EXPECT_TRUE(slice.Contains(90'500));
}

TEST(ProfileDataTest, NewerTimestampOpensNewHeadSlice) {
  ProfileData profile(kMinute);
  ASSERT_TRUE(profile.Add(1 * kMinute, 1, 1, 1, One()).ok());
  ASSERT_TRUE(profile.Add(5 * kMinute, 1, 1, 2, One()).ok());
  ASSERT_EQ(profile.SliceCount(), 2u);
  EXPECT_EQ(profile.slices().front().start_ms(), 5 * kMinute);
  EXPECT_TRUE(profile.CheckInvariants());
}

TEST(ProfileDataTest, SameWindowAggregatesInPlace) {
  ProfileData profile(kMinute);
  ASSERT_TRUE(profile.Add(60'000, 1, 1, 7, CountVector{1, 2}).ok());
  ASSERT_TRUE(profile.Add(119'999, 1, 1, 7, CountVector{3, 4}).ok());
  ASSERT_EQ(profile.SliceCount(), 1u);
  const IndexedFeatureStats* stats =
      profile.slices().front().FindSlot(1)->Find(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->Find(7)->counts[0], 4);
  EXPECT_EQ(stats->Find(7)->counts[1], 6);
}

TEST(ProfileDataTest, OutOfOrderWriteFillsGap) {
  ProfileData profile(kMinute);
  ASSERT_TRUE(profile.Add(10 * kMinute, 1, 1, 1, One()).ok());
  ASSERT_TRUE(profile.Add(1 * kMinute, 1, 1, 2, One()).ok());
  // Late event between the two.
  ASSERT_TRUE(profile.Add(5 * kMinute, 1, 1, 3, One()).ok());
  EXPECT_EQ(profile.SliceCount(), 3u);
  EXPECT_TRUE(profile.CheckInvariants());
  // Newest first: 10m, 5m, 1m.
  auto it = profile.slices().begin();
  EXPECT_TRUE(it->Contains(10 * kMinute));
  ++it;
  EXPECT_TRUE(it->Contains(5 * kMinute));
  ++it;
  EXPECT_TRUE(it->Contains(1 * kMinute));
}

TEST(ProfileDataTest, OlderThanTailAppends) {
  ProfileData profile(kMinute);
  ASSERT_TRUE(profile.Add(10 * kMinute, 1, 1, 1, One()).ok());
  ASSERT_TRUE(profile.Add(2 * kMinute, 1, 1, 2, One()).ok());
  EXPECT_EQ(profile.SliceCount(), 2u);
  EXPECT_TRUE(profile.slices().back().Contains(2 * kMinute));
  EXPECT_TRUE(profile.CheckInvariants());
}

TEST(ProfileDataTest, RejectsEmptyCounts) {
  ProfileData profile(kMinute);
  EXPECT_TRUE(profile.Add(1000, 1, 1, 1, CountVector()).IsInvalidArgument());
}

TEST(ProfileDataTest, TracksLastActionAndBounds) {
  ProfileData profile(kMinute);
  ASSERT_TRUE(profile.Add(90'000, 1, 1, 1, One()).ok());
  ASSERT_TRUE(profile.Add(250'000, 1, 1, 1, One()).ok());
  EXPECT_EQ(profile.LastActionMs(), 250'000);
  EXPECT_EQ(profile.NewestMs(), 300'000);  // end of the 240k-300k slice
  EXPECT_EQ(profile.OldestMs(), 60'000);
}

TEST(ProfileDataTest, TotalFeaturesCountsAcrossSlices) {
  ProfileData profile(kMinute);
  ASSERT_TRUE(profile.Add(1 * kMinute, 1, 1, 1, One()).ok());
  ASSERT_TRUE(profile.Add(1 * kMinute, 1, 1, 2, One()).ok());
  ASSERT_TRUE(profile.Add(5 * kMinute, 2, 1, 3, One()).ok());
  EXPECT_EQ(profile.TotalFeatures(), 3u);
}

TEST(ProfileDataTest, MergeProfileAggregates) {
  ProfileData a(kMinute), b(kMinute);
  ASSERT_TRUE(a.Add(60'000, 1, 1, 7, CountVector{1}).ok());
  ASSERT_TRUE(b.Add(60'000, 1, 1, 7, CountVector{2}).ok());
  ASSERT_TRUE(b.Add(120'000, 1, 1, 8, CountVector{5}).ok());
  a.MergeProfile(b, ReduceFn::kSum);
  EXPECT_TRUE(a.CheckInvariants());
  EXPECT_EQ(a.TotalFeatures(), 2u);
  const auto* stats = a.slices().back().FindSlot(1)->Find(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->Find(7)->counts[0], 3);
}

TEST(ProfileDataTest, MergeProfilePreservesLastAction) {
  ProfileData a(kMinute), b(kMinute);
  ASSERT_TRUE(a.Add(100'000, 1, 1, 1, One()).ok());
  ASSERT_TRUE(b.Add(500'000, 1, 1, 2, One()).ok());
  a.MergeProfile(b, ReduceFn::kSum);
  EXPECT_EQ(a.LastActionMs(), 500'000);
}

// Property test: arbitrary timestamp sequences never violate the slice-list
// invariants, and every write remains queryable via Contains.
class ProfileDataPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProfileDataPropertyTest, RandomWritesKeepInvariants) {
  Rng rng(GetParam());
  ProfileData profile(kMinute);
  std::vector<TimestampMs> stamps;
  for (int i = 0; i < 400; ++i) {
    // Mix forward progress with out-of-order and duplicate timestamps.
    const TimestampMs ts =
        static_cast<TimestampMs>(rng.Uniform(3 * kMillisPerDay)) + kMinute;
    stamps.push_back(ts);
    ASSERT_TRUE(profile.Add(ts, static_cast<SlotId>(rng.Uniform(4)),
                            static_cast<TypeId>(rng.Uniform(4)),
                            rng.Uniform(100) + 1, One())
                    .ok());
    ASSERT_TRUE(profile.CheckInvariants()) << "after write " << i;
  }
  // Every written timestamp is covered by exactly one slice.
  for (TimestampMs ts : stamps) {
    int covering = 0;
    for (const auto& slice : profile.slices()) {
      if (slice.Contains(ts)) ++covering;
    }
    EXPECT_EQ(covering, 1) << ts;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileDataPropertyTest,
                         ::testing::Values(1, 7, 13, 42, 99, 12345));

TEST(ProfileDataTest, SliceOverlapsSemantics) {
  Slice slice(100, 200);
  EXPECT_TRUE(slice.Overlaps(150, 250));
  EXPECT_TRUE(slice.Overlaps(0, 101));
  EXPECT_TRUE(slice.Overlaps(199, 300));
  EXPECT_FALSE(slice.Overlaps(200, 300));  // closed-open
  EXPECT_FALSE(slice.Overlaps(0, 100));
  EXPECT_TRUE(slice.Overlaps(100, 200));
}

TEST(ProfileDataTest, SliceMergeFromWidensAndAggregates) {
  Slice newer(200, 300);
  newer.Add(1, 1, 7, CountVector{1});
  Slice older(100, 200);
  older.Add(1, 1, 7, CountVector{2});
  older.Add(2, 1, 9, CountVector{5});
  newer.MergeFrom(older, ReduceFn::kSum);
  EXPECT_EQ(newer.start_ms(), 100);
  EXPECT_EQ(newer.end_ms(), 300);
  EXPECT_EQ(newer.FindSlot(1)->Find(1)->Find(7)->counts[0], 3);
  EXPECT_EQ(newer.FindSlot(2)->Find(1)->Find(9)->counts[0], 5);
}

// Property: the O(1) incremental byte counter maintained by Add stays equal
// to a full re-measurement (no drift), for arbitrary write sequences.
class AccountingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AccountingPropertyTest, IncrementalBytesMatchRecompute) {
  Rng rng(GetParam());
  ProfileData profile(kMinute);
  for (int i = 0; i < 300; ++i) {
    CountVector counts(1 + rng.Uniform(6));  // crosses the inline boundary
    counts[0] = 1;
    ASSERT_TRUE(profile
                    .Add(static_cast<TimestampMs>(
                             rng.Uniform(2 * kMillisPerDay)) +
                             kMinute,
                         static_cast<SlotId>(rng.Uniform(4)),
                         static_cast<TypeId>(rng.Uniform(4)),
                         rng.Uniform(64) + 1, counts)
                    .ok());
    if (i % 37 == 36) {
      const size_t incremental = profile.ApproximateBytes();
      const size_t exact = profile.RecomputeBytes();
      EXPECT_EQ(incremental, exact) << "after write " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountingPropertyTest,
                         ::testing::Values(4, 19, 33, 71));

TEST(ProfileDataTest, ApproximateBytesGrowsWithData) {
  ProfileData profile(kMinute);
  const size_t empty_bytes = profile.ApproximateBytes();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        profile.Add(i * kMinute, 1, 1, static_cast<FeatureId>(i + 1), One())
            .ok());
  }
  EXPECT_GT(profile.ApproximateBytes(), empty_bytes + 1000);
}

}  // namespace
}  // namespace ips
