#include "common/status.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("profile 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "profile 42");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: profile 42");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Aborted("a"));
}

struct CodePredicateCase {
  Status status;
  StatusCode code;
  std::string_view name;
};

class StatusCodeTest : public ::testing::TestWithParam<CodePredicateCase> {};

TEST_P(StatusCodeTest, CodeAndNameAgree) {
  const auto& param = GetParam();
  EXPECT_EQ(param.status.code(), param.code);
  EXPECT_EQ(StatusCodeToString(param.status.code()), param.name);
  EXPECT_FALSE(param.status.ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, StatusCodeTest,
    ::testing::Values(
        CodePredicateCase{Status::NotFound("x"), StatusCode::kNotFound,
                          "NOT_FOUND"},
        CodePredicateCase{Status::InvalidArgument("x"),
                          StatusCode::kInvalidArgument, "INVALID_ARGUMENT"},
        CodePredicateCase{Status::AlreadyExists("x"),
                          StatusCode::kAlreadyExists, "ALREADY_EXISTS"},
        CodePredicateCase{Status::ResourceExhausted("x"),
                          StatusCode::kResourceExhausted,
                          "RESOURCE_EXHAUSTED"},
        CodePredicateCase{Status::Unavailable("x"), StatusCode::kUnavailable,
                          "UNAVAILABLE"},
        CodePredicateCase{Status::DeadlineExceeded("x"),
                          StatusCode::kDeadlineExceeded, "DEADLINE_EXCEEDED"},
        CodePredicateCase{Status::Aborted("x"), StatusCode::kAborted,
                          "ABORTED"},
        CodePredicateCase{Status::Corruption("x"), StatusCode::kCorruption,
                          "CORRUPTION"},
        CodePredicateCase{Status::Internal("x"), StatusCode::kInternal,
                          "INTERNAL"},
        CodePredicateCase{Status::Unimplemented("x"),
                          StatusCode::kUnimplemented, "UNIMPLEMENTED"}));

TEST(StatusTest, IsRetryableCoversEveryCode) {
  // Exactly the transient transport/storage faults are retryable; everything
  // else repeats deterministically or means nobody is waiting anymore.
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::AlreadyExists("x").IsRetryable());
  EXPECT_FALSE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_FALSE(Status::DeadlineExceeded("x").IsRetryable());
  EXPECT_TRUE(Status::Aborted("x").IsRetryable());
  EXPECT_FALSE(Status::Corruption("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
  EXPECT_FALSE(Status::Unimplemented("x").IsRetryable());
}

TEST(StatusTest, OverloadedCarriesRetryAfterHint) {
  Status s = Status::Overloaded("queue full", 25);
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_TRUE(s.IsThrottled());
  EXPECT_TRUE(s.has_retry_after());
  EXPECT_EQ(s.retry_after_ms(), 25);
  EXPECT_EQ(s.ToString(), "RESOURCE_EXHAUSTED: queue full (retry after 25ms)");
  // Shed responses are still terminal for the generic retry loop: pacing
  // them is RetryPolicy's hint-aware path, not the failover path.
  EXPECT_FALSE(s.IsRetryable());
}

TEST(StatusTest, PlainResourceExhaustedHasNoHint) {
  // A quota rejection (hint-less) is distinguishable from a shed: the client
  // treats the former as terminal and the latter as "come back in N ms".
  Status s = Status::ResourceExhausted("quota exceeded for caller");
  EXPECT_TRUE(s.IsThrottled());
  EXPECT_FALSE(s.has_retry_after());
  EXPECT_EQ(s.retry_after_ms(), 0);
  EXPECT_EQ(s.ToString(), "RESOURCE_EXHAUSTED: quota exceeded for caller");
}

TEST(StatusTest, RetryAfterSurvivesCopies) {
  Status s = Status::Overloaded("busy", 7);
  Status copy = s;
  EXPECT_TRUE(copy.has_retry_after());
  EXPECT_EQ(copy.retry_after_ms(), 7);
  Status moved = std::move(copy);
  EXPECT_EQ(moved.retry_after_ms(), 7);
}

TEST(StatusTest, DeadlineExceededPredicate) {
  EXPECT_TRUE(Status::DeadlineExceeded("late").IsDeadlineExceeded());
  EXPECT_FALSE(Status::Unavailable("down").IsDeadlineExceeded());
  EXPECT_FALSE(Status::OK().IsDeadlineExceeded());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(9), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Status FailWhenNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int v) {
  IPS_RETURN_IF_ERROR(FailWhenNegative(v));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_TRUE(UseReturnIfError(-1).IsInvalidArgument());
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  IPS_ASSIGN_OR_RETURN(int half, Half(v));
  IPS_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(StatusMacrosTest, AssignOrReturnChains) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());
}

}  // namespace
}  // namespace ips
