#include "server/quota.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace ips {
namespace {

TEST(QuotaManagerTest, UnknownCallerUnlimitedByDefault) {
  ManualClock clock(0);
  QuotaManager quota(&clock, /*default_qps=*/0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(quota.Check("anyone").ok());
  }
}

TEST(QuotaManagerTest, ExplicitQuotaEnforced) {
  ManualClock clock(0);
  QuotaManager quota(&clock);
  quota.SetQuota("feed", 100.0);
  int granted = 0;
  for (int i = 0; i < 500; ++i) {
    if (quota.Check("feed").ok()) ++granted;
  }
  EXPECT_EQ(granted, 100);  // burst = one second of traffic
  Status rejected = quota.Check("feed");
  EXPECT_TRUE(rejected.IsResourceExhausted());
}

TEST(QuotaManagerTest, UsageRecoversAfterFallingUnderLimit) {
  // Section V-b: requests rejected "until its usage falls below the limit".
  ManualClock clock(0);
  QuotaManager quota(&clock);
  quota.SetQuota("ads", 10.0);
  while (quota.Check("ads").ok()) {
  }
  clock.AdvanceMs(500);  // 5 tokens back
  int granted = 0;
  while (quota.Check("ads").ok()) ++granted;
  EXPECT_EQ(granted, 5);
}

TEST(QuotaManagerTest, CallersAreIndependent) {
  ManualClock clock(0);
  QuotaManager quota(&clock);
  quota.SetQuota("a", 1.0);
  quota.SetQuota("b", 100.0);
  EXPECT_TRUE(quota.Check("a").ok());
  EXPECT_TRUE(quota.Check("a").IsResourceExhausted());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(quota.Check("b").ok()) << i;
  }
}

TEST(QuotaManagerTest, DefaultQpsAppliesToUnknownCallers) {
  ManualClock clock(0);
  QuotaManager quota(&clock, /*default_qps=*/5.0);
  int granted = 0;
  for (int i = 0; i < 100; ++i) {
    if (quota.Check("stranger").ok()) ++granted;
  }
  EXPECT_EQ(granted, 5);
}

TEST(QuotaManagerTest, HotReconfigureTakesEffect) {
  ManualClock clock(0);
  QuotaManager quota(&clock);
  quota.SetQuota("feed", 2.0);
  EXPECT_TRUE(quota.Check("feed").ok());
  EXPECT_TRUE(quota.Check("feed").ok());
  EXPECT_FALSE(quota.Check("feed").ok());
  quota.SetQuota("feed", 1000.0);  // ops bumps the quota live
  clock.AdvanceMs(1000);
  int granted = 0;
  while (quota.Check("feed").ok()) ++granted;
  EXPECT_EQ(granted, 1000);
  EXPECT_DOUBLE_EQ(quota.QuotaFor("feed"), 1000.0);
}

TEST(QuotaManagerTest, RemoveQuotaRestoresDefault) {
  ManualClock clock(0);
  QuotaManager quota(&clock, /*default_qps=*/0);
  quota.SetQuota("x", 1.0);
  quota.Check("x").ok();
  EXPECT_TRUE(quota.Check("x").IsResourceExhausted());
  quota.RemoveQuota("x");
  EXPECT_TRUE(quota.Check("x").ok());  // unlimited again
}

TEST(QuotaManagerTest, WeightedBatchCost) {
  ManualClock clock(0);
  QuotaManager quota(&clock);
  quota.SetQuota("batch", 10.0);
  EXPECT_TRUE(quota.Check("batch", 8.0).ok());
  EXPECT_TRUE(quota.Check("batch", 8.0).IsResourceExhausted());
  EXPECT_TRUE(quota.Check("batch", 2.0).ok());
}

}  // namespace
}  // namespace ips
