#include "server/quota.h"

#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"

namespace ips {
namespace {

TEST(QuotaManagerTest, UnknownCallerUnlimitedByDefault) {
  ManualClock clock(0);
  QuotaManager quota(&clock, /*default_qps=*/0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(quota.Check("anyone").ok());
  }
}

TEST(QuotaManagerTest, ExplicitQuotaEnforced) {
  ManualClock clock(0);
  QuotaManager quota(&clock);
  quota.SetQuota("feed", 100.0);
  int granted = 0;
  for (int i = 0; i < 500; ++i) {
    if (quota.Check("feed").ok()) ++granted;
  }
  EXPECT_EQ(granted, 100);  // burst = one second of traffic
  Status rejected = quota.Check("feed");
  EXPECT_TRUE(rejected.IsResourceExhausted());
}

TEST(QuotaManagerTest, UsageRecoversAfterFallingUnderLimit) {
  // Section V-b: requests rejected "until its usage falls below the limit".
  ManualClock clock(0);
  QuotaManager quota(&clock);
  quota.SetQuota("ads", 10.0);
  while (quota.Check("ads").ok()) {
  }
  clock.AdvanceMs(500);  // 5 tokens back
  int granted = 0;
  while (quota.Check("ads").ok()) ++granted;
  EXPECT_EQ(granted, 5);
}

TEST(QuotaManagerTest, CallersAreIndependent) {
  ManualClock clock(0);
  QuotaManager quota(&clock);
  quota.SetQuota("a", 1.0);
  quota.SetQuota("b", 100.0);
  EXPECT_TRUE(quota.Check("a").ok());
  EXPECT_TRUE(quota.Check("a").IsResourceExhausted());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(quota.Check("b").ok()) << i;
  }
}

TEST(QuotaManagerTest, DefaultQpsAppliesToUnknownCallers) {
  ManualClock clock(0);
  QuotaManager quota(&clock, /*default_qps=*/5.0);
  int granted = 0;
  for (int i = 0; i < 100; ++i) {
    if (quota.Check("stranger").ok()) ++granted;
  }
  EXPECT_EQ(granted, 5);
}

TEST(QuotaManagerTest, HotReconfigureTakesEffect) {
  ManualClock clock(0);
  QuotaManager quota(&clock);
  quota.SetQuota("feed", 2.0);
  EXPECT_TRUE(quota.Check("feed").ok());
  EXPECT_TRUE(quota.Check("feed").ok());
  EXPECT_FALSE(quota.Check("feed").ok());
  quota.SetQuota("feed", 1000.0);  // ops bumps the quota live
  clock.AdvanceMs(1000);
  int granted = 0;
  while (quota.Check("feed").ok()) ++granted;
  EXPECT_EQ(granted, 1000);
  EXPECT_DOUBLE_EQ(quota.QuotaFor("feed"), 1000.0);
}

TEST(QuotaManagerTest, RemoveQuotaRestoresDefault) {
  ManualClock clock(0);
  QuotaManager quota(&clock, /*default_qps=*/0);
  quota.SetQuota("x", 1.0);
  quota.Check("x").ok();
  EXPECT_TRUE(quota.Check("x").IsResourceExhausted());
  quota.RemoveQuota("x");
  EXPECT_TRUE(quota.Check("x").ok());  // unlimited again
}

TEST(QuotaManagerTest, WeightedBatchCost) {
  ManualClock clock(0);
  QuotaManager quota(&clock);
  quota.SetQuota("batch", 10.0);
  EXPECT_TRUE(quota.Check("batch", 8.0).ok());
  EXPECT_TRUE(quota.Check("batch", 8.0).IsResourceExhausted());
  EXPECT_TRUE(quota.Check("batch", 2.0).ok());
}

TEST(QuotaManagerTest, ReconfigurePreservesDrainedUsage) {
  // Reconfiguring a live quota keeps the bucket's accumulated usage: a
  // caller that just drained its allowance does NOT get a free burst from a
  // config push — it stays drained and refills at the NEW rate, capped at
  // the new burst. This is the semantic the config-registry watcher relies
  // on (re-publishing a quota document must not reset enforcement).
  ManualClock clock(0);
  QuotaManager quota(&clock);
  quota.SetQuota("feed", 5.0);
  while (quota.Check("feed").ok()) {
  }
  quota.SetQuota("feed", 3.0);  // lower rate; drained state carries over
  EXPECT_FALSE(quota.Check("feed").ok());
  clock.AdvanceMs(5000);  // refill at the new rate, cap at the new burst
  int granted = 0;
  while (quota.Check("feed").ok()) ++granted;
  EXPECT_EQ(granted, 3);
}

TEST(QuotaManagerTest, RemoveUnknownCallerIsNoOp) {
  ManualClock clock(0);
  QuotaManager quota(&clock, /*default_qps=*/2.0);
  quota.RemoveQuota("ghost");  // never configured: must not crash or leak
  int granted = 0;
  for (int i = 0; i < 10; ++i) {
    if (quota.Check("ghost").ok()) ++granted;
  }
  EXPECT_EQ(granted, 2);  // default still applies
}

TEST(QuotaManagerTest, MidFlightRemovalRaceIsSafe) {
  // Threads hammer Check while the main thread removes and re-adds the same
  // caller's quota: an in-flight Check that grabbed the bucket before a
  // RemoveQuota must resolve as "checked under the old quota", never as a
  // use-after-free (this is what TSan/ASan runs of this test pin down).
  ManualClock clock(0);
  QuotaManager quota(&clock, /*default_qps=*/0);
  quota.SetQuota("hot", 1'000'000.0);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> checks{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        quota.Check("hot", 1.0).ok();
        checks.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Churn for 500 rounds, then keep churning until every hammer thread has
  // demonstrably overlapped with it (on a loaded single-core sanitizer run
  // the fixed loop can finish before the threads are even scheduled).
  for (int i = 0; i < 500 || checks.load() < 4; ++i) {
    quota.RemoveQuota("hot");
    quota.SetQuota("hot", 1'000'000.0);
    clock.AdvanceMs(1);
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(checks.load(), 0);
  // Manager still consistent after the churn.
  EXPECT_DOUBLE_EQ(quota.QuotaFor("hot"), 1'000'000.0);
  EXPECT_TRUE(quota.Check("hot").ok());
}

TEST(QuotaManagerTest, ShardedCallersStayIndependentUnderConcurrency) {
  // Many distinct callers spread across shards, checked from several
  // threads at once: each caller's accounting must stay exact.
  ManualClock clock(0);
  QuotaManager quota(&clock);
  constexpr int kCallers = 64;
  for (int c = 0; c < kCallers; ++c) {
    quota.SetQuota("caller-" + std::to_string(c), 10.0);
  }
  std::array<std::atomic<int>, kCallers> granted{};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int c = 0; c < kCallers; ++c) {
        const std::string caller = "caller-" + std::to_string(c);
        for (int i = 0; i < 10; ++i) {
          if (quota.Check(caller).ok()) {
            granted[c].fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // 4 threads x 10 attempts against a burst of 10: exactly 10 grants each.
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(granted[c].load(), 10) << "caller-" << c;
  }
}

}  // namespace
}  // namespace ips
