#include "core/table_schema.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace ips {
namespace {

TEST(TableSchemaTest, ParsesFullDocument) {
  const char* doc = R"({
    "name": "user_profile",
    "actions": ["click", "like", "share"],
    "reduce": "SUM",
    "write_granularity": "1m",
    "time_dimension": {
      "1m": ["0s", "1h"],
      "1h": ["1h", "24h"],
      "1d": ["24h", "30d"],
      "30d": ["30d", "365d"]
    },
    "truncate": {"max_age": "365d", "max_slices": 120},
    "shrink": {
      "default_retain": 50,
      "slots": {"3": 100, "7": 20},
      "action_weights": [1.0, 2.0, 3.0],
      "freshness": "1h"
    }
  })";
  auto schema = ParseTableSchemaJson(doc);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->name, "user_profile");
  ASSERT_EQ(schema->actions.size(), 3u);
  EXPECT_EQ(schema->ActionIndex("like"), 1);
  EXPECT_EQ(schema->ActionIndex("bogus"), -1);
  EXPECT_EQ(schema->reduce, ReduceFn::kSum);
  EXPECT_EQ(schema->write_granularity_ms, kMillisPerMinute);
  ASSERT_EQ(schema->time_dimensions.size(), 4u);
  // Ladder sorted by age, contiguous.
  EXPECT_EQ(schema->time_dimensions[0].granularity_ms, kMillisPerMinute);
  EXPECT_EQ(schema->time_dimensions[0].from_age_ms, 0);
  EXPECT_EQ(schema->time_dimensions[3].granularity_ms, 30 * kMillisPerDay);
  EXPECT_EQ(schema->time_dimensions[3].to_age_ms, 365 * kMillisPerDay);
  EXPECT_EQ(schema->truncate.max_age_ms, 365 * kMillisPerDay);
  EXPECT_EQ(schema->truncate.max_slices, 120);
  EXPECT_EQ(schema->shrink.default_retain, 50);
  EXPECT_EQ(schema->shrink.retain_per_slot.at(3), 100);
  EXPECT_EQ(schema->shrink.retain_per_slot.at(7), 20);
  ASSERT_EQ(schema->shrink.action_weights.size(), 3u);
  EXPECT_DOUBLE_EQ(schema->shrink.action_weights[2], 3.0);
  EXPECT_EQ(schema->shrink.freshness_horizon_ms, kMillisPerHour);
}

TEST(TableSchemaTest, ParsesMaxReduce) {
  auto schema = ParseTableSchemaJson(
      R"({"name": "bids", "actions": ["price"], "reduce": "MAX"})");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->reduce, ReduceFn::kMax);
}

TEST(TableSchemaTest, RejectsUnknownReduce) {
  auto schema = ParseTableSchemaJson(
      R"({"name": "t", "actions": ["a"], "reduce": "AVG"})");
  EXPECT_FALSE(schema.ok());
}

TEST(TableSchemaTest, RejectsEmptyName) {
  auto schema = ParseTableSchemaJson(R"({"actions": ["a"]})");
  EXPECT_FALSE(schema.ok());
}

TEST(TableSchemaTest, RejectsGappedLadder) {
  auto schema = ParseTableSchemaJson(R"({
    "name": "t", "actions": ["a"],
    "time_dimension": {"1m": ["0s", "1h"], "1d": ["24h", "30d"]}
  })");
  EXPECT_FALSE(schema.ok());  // hole between 1h and 24h
}

TEST(TableSchemaTest, RejectsInvertedRange) {
  auto schema = ParseTableSchemaJson(R"({
    "name": "t", "actions": ["a"],
    "time_dimension": {"1m": ["1h", "0s"]}
  })");
  EXPECT_FALSE(schema.ok());
}

TEST(TableSchemaTest, RejectsNonObject) {
  auto schema = ParseTableSchemaJson(R"([1, 2, 3])");
  EXPECT_FALSE(schema.ok());
}

TEST(TableSchemaTest, DefaultSchemaValidates) {
  TableSchema schema = DefaultTableSchema("feed");
  EXPECT_TRUE(schema.Validate().ok());
  EXPECT_EQ(schema.name, "feed");
  EXPECT_EQ(schema.actions.size(), 4u);
  EXPECT_FALSE(schema.time_dimensions.empty());
  EXPECT_GT(schema.truncate.max_age_ms, 0);
}

TEST(TableSchemaTest, ValidateCatchesNegativeLimits) {
  TableSchema schema = DefaultTableSchema("t");
  schema.truncate.max_slices = -1;
  EXPECT_FALSE(schema.Validate().ok());
  schema = DefaultTableSchema("t");
  schema.shrink.default_retain = -5;
  EXPECT_FALSE(schema.Validate().ok());
  schema = DefaultTableSchema("t");
  schema.write_granularity_ms = 0;
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(TableSchemaTest, LadderMayBeEmpty) {
  auto schema =
      ParseTableSchemaJson(R"({"name": "t", "actions": ["a"]})");
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->time_dimensions.empty());
  EXPECT_TRUE(schema->Validate().ok());
}

}  // namespace
}  // namespace ips
