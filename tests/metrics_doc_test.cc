// Catalogue-completeness check for docs/METRICS.md: drive a representative
// traffic mix through a full deployment (writes, hit/miss reads, batch
// reads, traced requests), then assert that every metric name the live
// registry contains is documented. scripts/check_docs.sh covers the static
// direction (every literal in the source tree appears in the doc and vice
// versa); this test catches names assembled at runtime that a grep could
// miss.
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "cluster/client.h"
#include "cluster/deployment.h"
#include "common/clock.h"
#include "common/trace_collector.h"

#ifndef IPS_SOURCE_DIR
#error "build must define IPS_SOURCE_DIR"
#endif

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;

// Every backticked token in the doc; metric names are a strict subset, so
// an undocumented metric cannot hide while a documented one gains context.
std::set<std::string> DocumentedNames() {
  const std::string path = std::string(IPS_SOURCE_DIR) + "/docs/METRICS.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::set<std::string> names;
  size_t pos = 0;
  while ((pos = text.find('`', pos)) != std::string::npos) {
    const size_t end = text.find('`', pos + 1);
    if (end == std::string::npos) break;
    names.insert(text.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  return names;
}

TEST(MetricsDocTest, EveryLiveMetricNameIsDocumented) {
  ManualClock clock(100 * kDay);
  DeploymentOptions options;
  options.regions = {{"lf", 2, /*is_primary=*/true}};
  options.instance.start_background_threads = false;
  options.instance.cache.start_background_threads = false;
  options.instance.compaction.synchronous = true;
  options.instance.isolation_enabled = false;
  options.instance.cache.write_granularity_ms = kMinute;
  Deployment deployment(options, &clock);
  TableSchema schema = DefaultTableSchema("profiles");
  schema.write_granularity_ms = kMinute;
  ASSERT_TRUE(deployment.CreateTableEverywhere(schema).ok());

  IpsClientOptions client_options;
  client_options.caller = "doc-test";
  client_options.local_region = "lf";
  IpsClient client(client_options, &deployment);

  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  spec.sort_by = SortBy::kActionCount;
  spec.k = 10;

  // Writes, single reads (miss then hit), a scatter-gather batch read, an
  // unknown table (error counters), and traced requests.
  std::vector<ProfileId> pids;
  for (ProfileId pid = 1; pid <= 16; ++pid) {
    ASSERT_TRUE(client
                    .AddProfile("profiles", pid, clock.NowMs() - kMinute, 1,
                                1, 7, CountVector{1})
                    .ok());
    pids.push_back(pid);
  }
  for (ProfileId pid = 1; pid <= 16; ++pid) {
    ASSERT_TRUE(client.Query("profiles", pid, spec).ok());
  }
  ASSERT_TRUE(client
                  .MultiQuery("profiles",
                              std::span<const ProfileId>(pids.data(),
                                                         pids.size()),
                              spec)
                  .ok());
  EXPECT_FALSE(client.Query("no_such_table", 1, spec).ok());

  TraceCollectorOptions trace_options;
  trace_options.sample_every_n = 1;
  TraceCollector collector(trace_options, &clock, deployment.metrics());
  for (int i = 0; i < 3; ++i) {
    auto trace = collector.MaybeStartTrace();
    ASSERT_NE(trace, nullptr);
    CallContext ctx;
    ctx.trace = TraceCollector::ContextFor(trace.get());
    ASSERT_TRUE(client.Query("profiles", 1, spec, ctx).ok());
    collector.Finish(std::move(trace));
  }

  const std::set<std::string> documented = DocumentedNames();
  ASSERT_FALSE(documented.empty());
  // Sanity: the doc walk really extracted metric names.
  EXPECT_TRUE(documented.count("server.queries"));
  EXPECT_TRUE(documented.count("trace.stage.kv.load"));

  for (const std::string& name : deployment.metrics()->MetricNames()) {
    EXPECT_TRUE(documented.count(name))
        << "metric '" << name
        << "' is live but missing from docs/METRICS.md";
  }
}

}  // namespace
}  // namespace ips
