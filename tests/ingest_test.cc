#include "ingest/events.h"
#include "ingest/ingestion_job.h"
#include "ingest/message_log.h"
#include "ingest/stream_join.h"
#include "ingest/workload.h"

#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;

// --------------------------------------------------------------- Events ---

TEST(EventsTest, InstanceEncodeDecodeRoundTrips) {
  Instance instance;
  instance.uid = 0xDEADBEEF12345678ULL;
  instance.item_id = 99;
  instance.timestamp = -5;  // negative timestamps survive zigzag
  instance.slot = 3;
  instance.type = 7;
  instance.counts = CountVector{1, 0, 2};
  Instance decoded;
  ASSERT_TRUE(DecodeInstance(EncodeInstance(instance), &decoded));
  EXPECT_EQ(decoded.uid, instance.uid);
  EXPECT_EQ(decoded.item_id, 99u);
  EXPECT_EQ(decoded.timestamp, -5);
  EXPECT_EQ(decoded.slot, 3u);
  EXPECT_EQ(decoded.type, 7u);
  EXPECT_EQ(decoded.counts, instance.counts);
}

TEST(EventsTest, DecodeRejectsGarbage) {
  Instance decoded;
  EXPECT_FALSE(DecodeInstance("garbage!", &decoded));
  EXPECT_FALSE(DecodeInstance("", &decoded));
}

// ----------------------------------------------------------- MessageLog ---

TEST(MessageLogTest, AppendReadRoundTrips) {
  MessageLog log(4);
  const uint64_t key = 7;
  const size_t partition = log.PartitionFor(key);
  log.Append("topic", key, "a");
  log.Append("topic", key, "b");
  const auto records = log.Read("topic", partition, 0, 10);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].value, "a");
  EXPECT_EQ(records[1].value, "b");
  EXPECT_EQ(records[1].offset, 1);
  EXPECT_EQ(log.EndOffset("topic", partition), 2);
}

TEST(MessageLogTest, SameKeyStaysOrderedInOnePartition) {
  MessageLog log(8);
  for (int i = 0; i < 100; ++i) {
    log.Append("t", 42, std::to_string(i));
  }
  const size_t partition = log.PartitionFor(42);
  const auto records = log.Read("t", partition, 0, 1000);
  ASSERT_EQ(records.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(records[i].value, std::to_string(i));
  }
}

TEST(MessageLogTest, ReadRespectsOffsetAndLimit) {
  MessageLog log(1);
  for (int i = 0; i < 10; ++i) log.Append("t", 1, std::to_string(i));
  auto records = log.Read("t", 0, 4, 3);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].value, "4");
  EXPECT_EQ(records[2].value, "6");
  EXPECT_TRUE(log.Read("t", 0, 100, 5).empty());
  EXPECT_TRUE(log.Read("nope", 0, 0, 5).empty());
}

TEST(MessageLogTest, CommittedOffsetsPerGroup) {
  MessageLog log(2);
  EXPECT_EQ(log.CommittedOffset("g1", "t", 0), 0);
  log.CommitOffset("g1", "t", 0, 5);
  log.CommitOffset("g2", "t", 0, 9);
  EXPECT_EQ(log.CommittedOffset("g1", "t", 0), 5);
  EXPECT_EQ(log.CommittedOffset("g2", "t", 0), 9);
  EXPECT_EQ(log.CommittedOffset("g1", "t", 1), 0);
}

// ----------------------------------------------------------- StreamJoin ---

StreamJoinOptions JoinOptions() {
  StreamJoinOptions options;
  options.window_ms = kMinute;
  options.num_actions = 3;
  return options;
}

TEST(StreamJoinTest, CompleteGroupEmitsEagerly) {
  std::vector<Instance> out;
  StreamJoiner joiner(JoinOptions(),
                      [&](const Instance& i) { out.push_back(i); });
  ImpressionEvent imp{1, 100, 200, 1000, false};
  FeatureEvent feat{1, 100, 1000, 5, 6};
  ActionEvent act{1, 100, 200, 1500, 1, 1};
  joiner.OnImpression(imp);
  joiner.OnFeature(feat);
  joiner.OnAction(act);
  EXPECT_EQ(joiner.AdvanceWatermark(2000), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].uid, 100u);
  EXPECT_EQ(out[0].item_id, 200u);
  EXPECT_EQ(out[0].slot, 5u);
  EXPECT_EQ(out[0].type, 6u);
  EXPECT_EQ(out[0].counts.At(1), 1);
  EXPECT_EQ(out[0].timestamp, 1500);  // action time dominates
  EXPECT_EQ(joiner.PendingGroups(), 0u);
}

TEST(StreamJoinTest, IncompleteGroupWaitsForWindow) {
  std::vector<Instance> out;
  StreamJoiner joiner(JoinOptions(),
                      [&](const Instance& i) { out.push_back(i); });
  joiner.OnImpression(ImpressionEvent{1, 100, 200, 1000, false});
  joiner.OnAction(ActionEvent{1, 100, 200, 1200, 0, 1});
  // Missing the feature stream: do not emit before the window expires.
  EXPECT_EQ(joiner.AdvanceWatermark(1000 + kMinute - 1), 0u);
  EXPECT_EQ(joiner.PendingGroups(), 1u);
  // Window expired: emit with default categorization.
  EXPECT_EQ(joiner.AdvanceWatermark(1000 + kMinute), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].slot, 0u);
}

TEST(StreamJoinTest, ActionlessGroupDroppedByDefault) {
  std::vector<Instance> out;
  StreamJoiner joiner(JoinOptions(),
                      [&](const Instance& i) { out.push_back(i); });
  joiner.OnImpression(ImpressionEvent{1, 100, 200, 1000, false});
  joiner.OnFeature(FeatureEvent{1, 100, 1000, 5, 6});
  EXPECT_EQ(joiner.AdvanceWatermark(1000 + 2 * kMinute), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(StreamJoinTest, ActionlessEmittedWhenConfigured) {
  StreamJoinOptions options = JoinOptions();
  options.emit_actionless = true;
  std::vector<Instance> out;
  StreamJoiner joiner(options, [&](const Instance& i) { out.push_back(i); });
  joiner.OnImpression(ImpressionEvent{1, 100, 200, 1000, false});
  EXPECT_EQ(joiner.AdvanceWatermark(1000 + 2 * kMinute), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].counts.Total(), 0);
}

TEST(StreamJoinTest, ActionWithoutImpressionNeverEmits) {
  std::vector<Instance> out;
  StreamJoiner joiner(JoinOptions(),
                      [&](const Instance& i) { out.push_back(i); });
  joiner.OnAction(ActionEvent{1, 100, 200, 1000, 0, 1});
  EXPECT_EQ(joiner.AdvanceWatermark(1000 + 2 * kMinute), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(joiner.PendingGroups(), 0u);  // expired groups are purged
}

TEST(StreamJoinTest, MultipleActionsAggregate) {
  std::vector<Instance> out;
  StreamJoiner joiner(JoinOptions(),
                      [&](const Instance& i) { out.push_back(i); });
  joiner.OnImpression(ImpressionEvent{1, 100, 200, 1000, false});
  joiner.OnFeature(FeatureEvent{1, 100, 1000, 5, 6});
  joiner.OnAction(ActionEvent{1, 100, 200, 1100, 0, 1});
  joiner.OnAction(ActionEvent{1, 100, 200, 1200, 0, 1});
  joiner.OnAction(ActionEvent{1, 100, 200, 1300, 2, 1});
  joiner.AdvanceWatermark(2000);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].counts.At(0), 2);
  EXPECT_EQ(out[0].counts.At(2), 1);
}

TEST(StreamJoinTest, ServerAndClientImpressionsDeduplicate) {
  std::vector<Instance> out;
  StreamJoiner joiner(JoinOptions(),
                      [&](const Instance& i) { out.push_back(i); });
  joiner.OnImpression(ImpressionEvent{1, 100, 200, 1100, /*client=*/true});
  joiner.OnImpression(ImpressionEvent{1, 100, 200, 1000, /*client=*/false});
  joiner.OnFeature(FeatureEvent{1, 100, 1000, 5, 6});
  joiner.OnAction(ActionEvent{1, 100, 200, 1200, 0, 1});
  joiner.AdvanceWatermark(5000);
  ASSERT_EQ(out.size(), 1u);  // one instance, not two
}

// ------------------------------------------------------------- Workload ---

TEST(WorkloadTest, DeterministicForSeed) {
  WorkloadOptions options;
  options.seed = 5;
  WorkloadGenerator a(options), b(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.SampleUser(), b.SampleUser());
  }
}

TEST(WorkloadTest, ItemCategorizationIsStable) {
  WorkloadOptions options;
  WorkloadGenerator gen(options);
  std::map<FeatureId, std::pair<SlotId, TypeId>> seen;
  for (int i = 0; i < 5000; ++i) {
    FeatureId item;
    SlotId slot;
    TypeId type;
    gen.SampleItem(&item, &slot, &type);
    ASSERT_LT(slot, options.num_slots);
    ASSERT_LT(type, options.types_per_slot);
    auto it = seen.find(item);
    if (it != seen.end()) {
      EXPECT_EQ(it->second.first, slot) << item;
      EXPECT_EQ(it->second.second, type) << item;
    } else {
      seen[item] = {slot, type};
    }
  }
}

TEST(WorkloadTest, QuerySpecsAreWellFormed) {
  WorkloadGenerator gen({});
  for (int i = 0; i < 1000; ++i) {
    ProfileId uid;
    const QuerySpec spec = gen.NextQuerySpec(&uid);
    EXPECT_LT(spec.slot, gen.options().num_slots);
    EXPECT_GE(spec.k, 10u);
    EXPECT_LE(spec.k, 100u);
    EXPECT_TRUE(spec.decay.Validate().ok());
  }
}

TEST(WorkloadTest, EventGroupsCorrelateStreams) {
  WorkloadGenerator gen({});
  auto group = gen.NextEventGroup(1000);
  EXPECT_EQ(group.impression.request_id, group.feature.request_id);
  for (const auto& action : group.actions) {
    EXPECT_EQ(action.request_id, group.impression.request_id);
    EXPECT_EQ(action.uid, group.impression.uid);
    EXPECT_GE(action.timestamp, 1000);
  }
  // Click (rate 1.0) always present.
  ASSERT_FALSE(group.actions.empty());
  EXPECT_EQ(group.actions[0].action, 0u);
}

TEST(WorkloadTest, DiurnalCurveBoundsAndShape) {
  double min_seen = 1e9, max_seen = -1e9;
  for (int64_t t = 0; t < kDay; t += kMinute) {
    const double f = DiurnalLoadFactor(t, 0.35);
    EXPECT_GE(f, 0.35 - 1e-9);
    EXPECT_LE(f, 1.0 + 1e-9);
    min_seen = std::min(min_seen, f);
    max_seen = std::max(max_seen, f);
  }
  EXPECT_LT(min_seen, 0.45);  // a real trough exists
  EXPECT_GT(max_seen, 0.9);   // a real peak exists
  // 3-4 am is quieter than 9 pm.
  EXPECT_LT(DiurnalLoadFactor(3 * kMillisPerHour + kMillisPerHour / 2),
            DiurnalLoadFactor(21 * kMillisPerHour));
}

// --------------------------------------------------------- IngestionJob ---

TEST(IngestionJobTest, EndToEndThroughLogAndCluster) {
  ManualClock clock(100 * kDay);
  DeploymentOptions dep_options;
  dep_options.regions = {{"lf", 1, true}};
  dep_options.instance.start_background_threads = false;
  dep_options.instance.cache.start_background_threads = false;
  dep_options.instance.compaction.synchronous = true;
  dep_options.instance.isolation_enabled = false;
  dep_options.instance.cache.write_granularity_ms = kMinute;
  Deployment deployment(dep_options, &clock);
  TableSchema schema = DefaultTableSchema("user_profile");
  schema.write_granularity_ms = kMinute;
  ASSERT_TRUE(deployment.CreateTableEverywhere(schema).ok());

  IpsClientOptions client_options;
  client_options.caller = "ingest";
  client_options.local_region = "lf";
  IpsClient client(client_options, &deployment);

  MessageLog log(4);
  Instance instance;
  instance.uid = 77;
  instance.item_id = 555;
  instance.timestamp = clock.NowMs() - kMinute;
  instance.slot = 2;
  instance.type = 3;
  instance.counts = CountVector{1, 1, 0, 0};
  log.Append("instances", instance.uid, EncodeInstance(instance));

  IngestionJobOptions job_options;
  job_options.table = "user_profile";
  IngestionJob job(job_options, &log, &client);
  EXPECT_EQ(job.PollOnce(), 1u);
  EXPECT_EQ(job.PollOnce(), 0u);  // offsets committed; no reprocessing
  EXPECT_EQ(job.error_count(), 0);

  auto result = client.GetProfileTopK("user_profile", 77, 2, 3,
                                      TimeRange::Current(kDay),
                                      SortBy::kActionCount, 0, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].fid, 555u);
}

TEST(IngestionJobTest, MalformedRecordsCountedNotFatal) {
  ManualClock clock(100 * kDay);
  DeploymentOptions dep_options;
  dep_options.regions = {{"lf", 1, true}};
  dep_options.instance.start_background_threads = false;
  dep_options.instance.cache.start_background_threads = false;
  dep_options.instance.compaction.synchronous = true;
  dep_options.instance.isolation_enabled = false;
  Deployment deployment(dep_options, &clock);
  ASSERT_TRUE(
      deployment.CreateTableEverywhere(DefaultTableSchema("user_profile"))
          .ok());
  IpsClientOptions client_options;
  client_options.local_region = "lf";
  IpsClient client(client_options, &deployment);

  MessageLog log(1);
  log.Append("instances", 1, "not an instance");
  Instance good;
  good.uid = 1;
  good.item_id = 2;
  good.timestamp = clock.NowMs() - kMinute;
  good.counts = CountVector{1};
  log.Append("instances", 1, EncodeInstance(good));

  IngestionJob job({}, &log, &client);
  EXPECT_EQ(job.PollOnce(), 1u);
  EXPECT_EQ(job.error_count(), 1);
}

TEST(IngestionJobTest, CustomExtractionLogic) {
  ManualClock clock(100 * kDay);
  DeploymentOptions dep_options;
  dep_options.regions = {{"lf", 1, true}};
  dep_options.instance.start_background_threads = false;
  dep_options.instance.cache.start_background_threads = false;
  dep_options.instance.compaction.synchronous = true;
  dep_options.instance.isolation_enabled = false;
  Deployment deployment(dep_options, &clock);
  ASSERT_TRUE(
      deployment.CreateTableEverywhere(DefaultTableSchema("user_profile"))
          .ok());
  IpsClientOptions client_options;
  client_options.local_region = "lf";
  IpsClient client(client_options, &deployment);

  MessageLog log(1);
  Instance instance;
  instance.uid = 9;
  instance.item_id = 100;
  instance.timestamp = clock.NowMs() - kMinute;
  instance.counts = CountVector{1};
  log.Append("instances", 9, EncodeInstance(instance));

  // Extraction that duplicates each instance into two slots.
  IngestionJob job({}, &log, &client, [](const Instance& i) {
    AddRecord a;
    a.timestamp = i.timestamp;
    a.slot = 1;
    a.fid = i.item_id;
    a.counts = i.counts;
    AddRecord b = a;
    b.slot = 2;
    return std::vector<AddRecord>{a, b};
  });
  EXPECT_EQ(job.PollOnce(), 1u);
  for (SlotId slot : {1u, 2u}) {
    auto result = client.GetProfileTopK("user_profile", 9, slot, std::nullopt,
                                        TimeRange::Current(kDay),
                                        SortBy::kActionCount, 0, 10);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->features.size(), 1u) << slot;
  }
}

}  // namespace
}  // namespace ips
