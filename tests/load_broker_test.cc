#include "cache/load_broker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/metrics.h"
#include "kvstore/mem_kv_store.h"
#include "server/ips_instance.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;

ProfileData MakeProfile(FeatureId fid) {
  ProfileData profile(kMinute);
  profile.Add(kMinute, 1, 1, fid, CountVector{1}).ok();
  return profile;
}

// Blocks the fetch callback until the test opens the gate, and lets the test
// wait until the callback has actually entered (i.e. the load is on the
// wire), so attach-vs-dispatch ordering is deterministic.
struct FetchGate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool open = false;

  void Enter() {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
};

// Polls (wall clock) until pred holds; fails the test after ~5s.
template <typename Pred>
::testing::AssertionResult Eventually(Pred pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return ::testing::AssertionFailure() << "condition not reached within 5s";
}

BrokerFetchFn CountingFetch(std::atomic<int>* calls,
                            std::vector<std::vector<ProfileId>>* batches,
                            std::mutex* batches_mu,
                            FetchGate* gate = nullptr) {
  return [=](const std::vector<ProfileId>& pids,
             std::vector<bool>* out_degraded) {
    calls->fetch_add(1);
    if (batches != nullptr) {
      std::lock_guard<std::mutex> lock(*batches_mu);
      batches->push_back(pids);
    }
    if (gate != nullptr) gate->Enter();
    out_degraded->assign(pids.size(), false);
    std::vector<Result<ProfileData>> out;
    out.reserve(pids.size());
    for (ProfileId pid : pids) {
      out.push_back(MakeProfile(static_cast<FeatureId>(pid)));
    }
    return out;
  };
}

TEST(LoadBrokerTest, SingleFlightConcurrentMissesShareOneFetch) {
  MetricsRegistry metrics;
  std::atomic<int> calls{0};
  FetchGate gate;
  LoadBrokerOptions options;
  options.window_micros = 0;  // single-flight only
  LoadBroker broker(options,
                    CountingFetch(&calls, nullptr, nullptr, &gate),
                    SystemClock::Instance(), &metrics);

  std::optional<std::vector<Result<ProfileData>>> leader_results;
  std::vector<bool> leader_degraded;
  std::thread leader([&] {
    leader_results = broker.Load({7}, &leader_degraded);
  });
  gate.AwaitEntered();  // the one fetch is now on the wire, gate closed

  constexpr int kFollowers = 3;
  std::optional<std::vector<Result<ProfileData>>> results[kFollowers];
  std::vector<bool> degraded[kFollowers];
  std::vector<std::thread> followers;
  for (int i = 0; i < kFollowers; ++i) {
    followers.emplace_back(
        [&, i] { results[i] = broker.Load({7}, &degraded[i]); });
  }
  // Attach is observable through the counter, so the gate only opens after
  // every follower is riding the in-flight load.
  ASSERT_TRUE(Eventually([&] {
    return metrics.GetCounter("broker.single_flight_hits")->Value() ==
           kFollowers;
  }));
  gate.Open();
  leader.join();
  for (auto& t : followers) t.join();

  EXPECT_EQ(calls.load(), 1);  // N concurrent misses, ONE kv.load
  ASSERT_EQ(leader_results->size(), 1u);
  ASSERT_TRUE((*leader_results)[0].ok());
  for (int i = 0; i < kFollowers; ++i) {
    ASSERT_EQ(results[i]->size(), 1u);
    ASSERT_TRUE((*results[i])[0].ok());
    EXPECT_EQ((*results[i])[0].value().TotalFeatures(), 1u);
  }
  EXPECT_EQ(metrics.GetCounter("broker.window_batches")->Value(), 1);
  EXPECT_EQ(broker.InFlightCount(), 0u);
}

TEST(LoadBrokerTest, WindowMergesRequestsAndClosesEarlyWhenFull) {
  MetricsRegistry metrics;
  std::atomic<int> calls{0};
  std::vector<std::vector<ProfileId>> batches;
  std::mutex batches_mu;
  LoadBrokerOptions options;
  options.window_micros = 10'000'000;  // 10s: only early close can pass
  options.max_batch_pids = 2;
  LoadBroker broker(options, CountingFetch(&calls, &batches, &batches_mu),
                    SystemClock::Instance(), &metrics);

  const auto start = std::chrono::steady_clock::now();
  std::optional<std::vector<Result<ProfileData>>> ra, rb;
  std::vector<bool> da, db;
  std::thread a([&] { ra = broker.Load({1}, &da); });
  // Pid 1 registered == the collector is already parked in its window (the
  // entry creation and collector election share one lock hold).
  ASSERT_TRUE(Eventually([&] { return broker.InFlightCount() >= 1; }));
  std::thread b([&] { rb = broker.Load({2}, &db); });
  a.join();
  b.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // The second distinct pid filled the window: one merged fetch, dispatched
  // immediately rather than after the 10s window.
  EXPECT_EQ(calls.load(), 1);
  ASSERT_EQ(batches.size(), 1u);
  std::vector<ProfileId> merged = batches[0];
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, (std::vector<ProfileId>{1, 2}));
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);
  ASSERT_TRUE((*ra)[0].ok());
  ASSERT_TRUE((*rb)[0].ok());
  EXPECT_EQ(metrics.GetCounter("broker.window_batches")->Value(), 1);
  EXPECT_EQ(metrics.GetCounter("broker.cross_request_dedup")->Value(), 0);
}

TEST(LoadBrokerTest, DuplicatePidAcrossRequestsDedupsBeforeDispatch) {
  MetricsRegistry metrics;
  std::atomic<int> calls{0};
  std::vector<std::vector<ProfileId>> batches;
  std::mutex batches_mu;
  LoadBrokerOptions options;
  options.window_micros = 10'000'000;
  options.max_batch_pids = 2;
  LoadBroker broker(options, CountingFetch(&calls, &batches, &batches_mu),
                    SystemClock::Instance(), &metrics);

  std::optional<std::vector<Result<ProfileData>>> ra, rb;
  std::vector<bool> da, db;
  std::thread a([&] { ra = broker.Load({1}, &da); });
  ASSERT_TRUE(Eventually([&] { return broker.InFlightCount() >= 1; }));
  // Second request wants pid 1 (already pending — merged, not re-fetched)
  // plus pid 2 (new, fills the window).
  std::thread b([&] { rb = broker.Load({1, 2}, &db); });
  a.join();
  b.join();

  EXPECT_EQ(calls.load(), 1);
  ASSERT_EQ(batches.size(), 1u);
  std::vector<ProfileId> merged = batches[0];
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, (std::vector<ProfileId>{1, 2}));  // pid 1 deduped
  EXPECT_EQ(metrics.GetCounter("broker.cross_request_dedup")->Value(), 1);
  ASSERT_TRUE((*ra)[0].ok());
  ASSERT_EQ(rb->size(), 2u);
  ASSERT_TRUE((*rb)[0].ok());
  ASSERT_TRUE((*rb)[1].ok());
  EXPECT_EQ((*rb)[1].value().slices().front().FindSlot(1) != nullptr, true);
}

TEST(LoadBrokerTest, DegradedFlagFansOutToEveryAttachedWaiter) {
  // Satellite regression: a shared load served from a fallback replica must
  // flag EVERY attached waiter degraded, not just the initiator.
  MetricsRegistry metrics;
  std::atomic<int> calls{0};
  FetchGate gate;
  LoadBrokerOptions options;
  options.window_micros = 0;
  LoadBroker broker(
      options,
      [&](const std::vector<ProfileId>& pids, std::vector<bool>* out_degraded)
          -> std::vector<Result<ProfileData>> {
        calls.fetch_add(1);
        gate.Enter();
        out_degraded->assign(pids.size(), true);  // replica fallback
        std::vector<Result<ProfileData>> out;
        for (ProfileId pid : pids) {
          out.push_back(MakeProfile(static_cast<FeatureId>(pid)));
        }
        return out;
      },
      SystemClock::Instance(), &metrics);

  std::optional<std::vector<Result<ProfileData>>> r1, r2, r3;
  std::vector<bool> d1, d2, d3;
  std::thread initiator([&] { r1 = broker.Load({5}, &d1); });
  gate.AwaitEntered();
  std::thread w2([&] { r2 = broker.Load({5}, &d2); });
  std::thread w3([&] { r3 = broker.Load({5}, &d3); });
  ASSERT_TRUE(Eventually([&] {
    return metrics.GetCounter("broker.single_flight_hits")->Value() == 2;
  }));
  gate.Open();
  initiator.join();
  w2.join();
  w3.join();

  EXPECT_EQ(calls.load(), 1);
  ASSERT_TRUE((*r1)[0].ok());
  ASSERT_TRUE((*r2)[0].ok());
  ASSERT_TRUE((*r3)[0].ok());
  EXPECT_EQ(d1, std::vector<bool>{true});
  EXPECT_EQ(d2, std::vector<bool>{true});
  EXPECT_EQ(d3, std::vector<bool>{true});
}

TEST(LoadBrokerTest, NotFoundFansOutToEveryAttachedWaiter) {
  MetricsRegistry metrics;
  std::atomic<int> calls{0};
  FetchGate gate;
  LoadBrokerOptions options;
  options.window_micros = 0;
  LoadBroker broker(
      options,
      [&](const std::vector<ProfileId>& pids, std::vector<bool>* out_degraded)
          -> std::vector<Result<ProfileData>> {
        calls.fetch_add(1);
        gate.Enter();
        out_degraded->assign(pids.size(), false);
        std::vector<Result<ProfileData>> out;
        for (size_t i = 0; i < pids.size(); ++i) {
          out.push_back(Status::NotFound("never persisted"));
        }
        return out;
      },
      SystemClock::Instance(), &metrics);

  std::optional<std::vector<Result<ProfileData>>> r1, r2;
  std::vector<bool> d1, d2;
  std::thread initiator([&] { r1 = broker.Load({11}, &d1); });
  gate.AwaitEntered();
  std::thread follower([&] { r2 = broker.Load({11}, &d2); });
  ASSERT_TRUE(Eventually([&] {
    return metrics.GetCounter("broker.single_flight_hits")->Value() == 1;
  }));
  gate.Open();
  initiator.join();
  follower.join();

  EXPECT_EQ(calls.load(), 1);
  EXPECT_TRUE((*r1)[0].status().IsNotFound());
  EXPECT_TRUE((*r2)[0].status().IsNotFound());
  EXPECT_EQ(broker.InFlightCount(), 0u);
}

TEST(LoadBrokerTest, WaiterDeadlineExpiryDetachesWithoutPoisoning) {
  MetricsRegistry metrics;
  ManualClock clock(1000);
  std::atomic<int> calls{0};
  FetchGate gate;
  LoadBrokerOptions options;
  options.window_micros = 0;
  LoadBroker broker(options,
                    CountingFetch(&calls, nullptr, nullptr, &gate), &clock,
                    &metrics);

  // Collector with no deadline: its fetch stalls on the gate.
  std::optional<std::vector<Result<ProfileData>>> leader_results;
  std::vector<bool> leader_degraded;
  std::thread leader([&] {
    leader_results = broker.Load({9}, &leader_degraded);
  });
  gate.AwaitEntered();

  // Follower with a deadline attaches to the stalled fetch.
  std::optional<std::vector<Result<ProfileData>>> follower_results;
  std::vector<bool> follower_degraded;
  std::thread follower([&] {
    follower_results =
        broker.Load({9}, &follower_degraded, /*deadline_ms=*/1050);
  });
  ASSERT_TRUE(Eventually([&] {
    return metrics.GetCounter("broker.single_flight_hits")->Value() == 1;
  }));

  // Deadline passes (simulated domain) while the fetch is still on the wire:
  // the follower detaches with DeadlineExceeded...
  clock.AdvanceMs(100);
  follower.join();
  ASSERT_EQ(follower_results->size(), 1u);
  EXPECT_TRUE((*follower_results)[0].status().IsDeadlineExceeded());
  EXPECT_EQ(metrics.GetCounter("broker.deadline_detaches")->Value(), 1);

  // ...but the shared load is neither cancelled nor poisoned: the collector
  // still gets its value, and the table drains clean.
  EXPECT_EQ(broker.InFlightCount(), 1u);
  gate.Open();
  leader.join();
  ASSERT_TRUE((*leader_results)[0].ok());
  EXPECT_EQ(broker.InFlightCount(), 0u);

  // A later miss for the same pid starts a fresh, healthy load.
  std::vector<bool> degraded;
  auto again = broker.Load({9}, &degraded);
  ASSERT_TRUE(again[0].ok());
  EXPECT_EQ(calls.load(), 2);
}

TEST(LoadBrokerTest, ShortFetchResultListFailsWaitersNotCrash) {
  MetricsRegistry metrics;
  LoadBrokerOptions options;
  options.window_micros = 0;
  LoadBroker broker(
      options,
      [](const std::vector<ProfileId>&, std::vector<bool>* out_degraded)
          -> std::vector<Result<ProfileData>> {
        out_degraded->clear();
        return {};  // misbehaving loader: short result list
      },
      SystemClock::Instance(), &metrics);
  std::vector<bool> degraded;
  auto results = broker.Load({3}, &degraded);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_FALSE(results[0].status().IsNotFound());
  EXPECT_EQ(broker.InFlightCount(), 0u);
}

TEST(LoadBrokerTest, OversizedPendingSetSplitsIntoChunkedFetches) {
  MetricsRegistry metrics;
  std::atomic<int> calls{0};
  std::vector<std::vector<ProfileId>> batches;
  std::mutex batches_mu;
  LoadBrokerOptions options;
  options.window_micros = 0;
  options.max_batch_pids = 2;
  LoadBroker broker(options, CountingFetch(&calls, &batches, &batches_mu),
                    SystemClock::Instance(), &metrics);
  std::vector<bool> degraded;
  auto results = broker.Load({1, 2, 3, 4, 5}, &degraded);
  ASSERT_EQ(results.size(), 5u);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i;
  }
  // The whole pending set was claimed (no stranded entries), dispatched in
  // max_batch_pids chunks.
  EXPECT_EQ(calls.load(), 3);
  ASSERT_EQ(batches.size(), 3u);
  for (const auto& batch : batches) EXPECT_LE(batch.size(), 2u);
  EXPECT_EQ(metrics.GetCounter("broker.window_batches")->Value(), 3);
  EXPECT_EQ(broker.InFlightCount(), 0u);
}

// ---------------------------------------------------------------------------
// Instance-level wiring: two single-profile queries for different cold pids,
// issued concurrently, must merge into ONE KvStore::MultiGet round trip.

TEST(LoadBrokerInstanceTest, ConcurrentColdQueriesShareOneMultiGet) {
  MemKvStore kv;
  ManualClock clock(100 * kDay);
  IpsInstanceOptions seed_options;
  seed_options.start_background_threads = false;
  seed_options.cache.start_background_threads = false;
  seed_options.cache.write_granularity_ms = kMinute;
  seed_options.compaction.synchronous = true;
  seed_options.compaction.min_interval_ms = 0;
  seed_options.isolation_enabled = false;
  TableSchema schema = DefaultTableSchema("profiles");
  schema.write_granularity_ms = kMinute;
  {
    IpsInstance seeding(seed_options, &kv, &clock);
    ASSERT_TRUE(seeding.CreateTable(schema).ok());
    for (ProfileId pid = 1; pid <= 2; ++pid) {
      ASSERT_TRUE(seeding
                      .AddProfile("test", "profiles", pid,
                                  clock.NowMs() - kMinute, 1, 1,
                                  static_cast<FeatureId>(pid), CountVector{1})
                      .ok());
    }
    seeding.FlushAll();
  }

  IpsInstanceOptions options = seed_options;
  options.load_broker.window_micros = 10'000'000;  // early close must fire
  options.load_broker.max_batch_pids = 2;
  IpsInstance fresh(options, &kv, &clock);
  ASSERT_TRUE(fresh.CreateTable(schema).ok());
  const int64_t multi_gets_before = kv.MultiGetCalls();

  const auto start = std::chrono::steady_clock::now();
  auto query = [&](ProfileId pid) {
    return fresh.GetProfileTopK("test", "profiles", pid, 1, std::nullopt,
                                TimeRange::Current(kDay),
                                SortBy::kActionCount, 0, 10);
  };
  std::optional<Result<QueryResult>> r1, r2;
  std::thread t1([&] { r1 = query(1); });
  std::thread t2([&] { r2 = query(2); });
  t1.join();
  t2.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_TRUE((*r1).ok()) << (*r1).status().ToString();
  ASSERT_TRUE((*r2).ok()) << (*r2).status().ToString();
  ASSERT_EQ((*r1)->features.size(), 1u);
  EXPECT_EQ((*r1)->features[0].fid, 1u);
  ASSERT_EQ((*r2)->features.size(), 1u);
  EXPECT_EQ((*r2)->features[0].fid, 2u);

  // Both misses rode one coalesced LoadBatch: one MultiGet on the store, and
  // the window closed on the second arrival, not after 10 seconds.
  EXPECT_EQ(kv.MultiGetCalls() - multi_gets_before, 1);
  EXPECT_EQ(fresh.metrics()->GetCounter("broker.window_batches")->Value(), 1);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);
}

TEST(LoadBrokerInstanceTest, BrokerAblationFallsBackToInlineLoads) {
  MemKvStore kv;
  ManualClock clock(100 * kDay);
  IpsInstanceOptions options;
  options.start_background_threads = false;
  options.cache.start_background_threads = false;
  options.cache.write_granularity_ms = kMinute;
  options.compaction.synchronous = true;
  options.compaction.min_interval_ms = 0;
  options.isolation_enabled = false;
  options.enable_load_broker = false;  // ablation: no broker wired
  TableSchema schema = DefaultTableSchema("profiles");
  schema.write_granularity_ms = kMinute;
  IpsInstance instance(options, &kv, &clock);
  ASSERT_TRUE(instance.CreateTable(schema).ok());
  ASSERT_TRUE(instance
                  .AddProfile("test", "profiles", 1, clock.NowMs() - kMinute,
                              1, 1, 1, CountVector{1})
                  .ok());
  auto result = instance.GetProfileTopK("test", "profiles", 1, 1,
                                        std::nullopt, TimeRange::Current(kDay),
                                        SortBy::kActionCount, 0, 10);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(instance.metrics()->GetCounter("broker.window_batches")->Value(),
            0);
}

}  // namespace
}  // namespace ips
