#include "query/query.h"

#include <map>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "core/profile_data.h"

namespace ips {
namespace {

constexpr int64_t kDay = kMillisPerDay;
constexpr SlotId kSports = 1;
constexpr SlotId kNews = 2;
constexpr TypeId kBasketball = 10;
constexpr TypeId kSoccer = 11;
constexpr FeatureId kLakers = 1001;
constexpr FeatureId kWarriors = 1002;

// Count vector layout in these tests: [like, comment, share].
enum Action : ActionIndex { kLike = 0, kComment = 1, kShare = 2 };

// The motivating example of Section II-A (Table I): Alice liked, commented
// and shared one Lakers video ten days ago, and liked two Warriors videos
// two days ago.
ProfileData AliceProfile(TimestampMs now) {
  ProfileData profile(kMillisPerMinute);
  EXPECT_TRUE(profile
                  .Add(now - 10 * kDay, kSports, kBasketball, kLakers,
                       CountVector{1, 1, 1})
                  .ok());
  EXPECT_TRUE(profile
                  .Add(now - 2 * kDay, kSports, kBasketball, kWarriors,
                       CountVector{2, 0, 0})
                  .ok());
  return profile;
}

TEST(QueryTest, MotivatingExampleTopLikedBasketballTeam) {
  const TimestampMs now = 100 * kDay;
  ProfileData alice = AliceProfile(now);
  // "Alice's most liked basketball team over the last 10 days" — the
  // Listing 1 SQL. The 10-day window includes both actions (the Lakers
  // action sits exactly at the boundary; use 11d to include it fully).
  auto result = GetProfileTopK(alice, kSports, kBasketball,
                               TimeRange::Current(11 * kDay),
                               SortBy::kActionCount, kLike, 1, now);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].fid, kWarriors);  // 2 likes > 1 like
  EXPECT_EQ(result->features[0].counts[kLike], 2);
}

TEST(QueryTest, NarrowWindowExcludesOldAction) {
  const TimestampMs now = 100 * kDay;
  ProfileData alice = AliceProfile(now);
  // Only the last 3 days: the Lakers action is out of range.
  auto result = GetProfileTopK(alice, kSports, kBasketball,
                               TimeRange::Current(3 * kDay),
                               SortBy::kActionCount, kLike, 10, now);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].fid, kWarriors);
}

TEST(QueryTest, CommentSortFindsLakers) {
  const TimestampMs now = 100 * kDay;
  ProfileData alice = AliceProfile(now);
  auto result = GetProfileTopK(alice, kSports, kBasketball,
                               TimeRange::Current(11 * kDay),
                               SortBy::kActionCount, kComment, 1, now);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].fid, kLakers);
}

TEST(QueryTest, SlotScopedQueryIgnoresOtherSlots) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile = AliceProfile(now);
  ASSERT_TRUE(
      profile.Add(now - kDay, kNews, 1, 5000, CountVector{100, 0, 0}).ok());
  auto result = GetProfileTopK(profile, kSports, std::nullopt,
                               TimeRange::Current(30 * kDay),
                               SortBy::kActionCount, kLike, 10, now);
  ASSERT_TRUE(result.ok());
  for (const auto& f : result->features) EXPECT_NE(f.fid, 5000u);
  EXPECT_EQ(result->features.size(), 2u);
}

TEST(QueryTest, TypeWildcardMergesAcrossTypes) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  ASSERT_TRUE(profile
                  .Add(now - kDay, kSports, kBasketball, 1, CountVector{5})
                  .ok());
  ASSERT_TRUE(
      profile.Add(now - kDay, kSports, kSoccer, 2, CountVector{9}).ok());
  auto result =
      GetProfileTopK(profile, kSports, std::nullopt,
                     TimeRange::Current(2 * kDay), SortBy::kActionCount,
                     kLike, 10, now);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 2u);
  EXPECT_EQ(result->features[0].fid, 2u);  // 9 likes first
}

TEST(QueryTest, AggregatesSameFeatureAcrossSlices) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  for (int d = 1; d <= 5; ++d) {
    ASSERT_TRUE(profile
                    .Add(now - d * kDay, kSports, kBasketball, kLakers,
                         CountVector{1, 0, 0})
                    .ok());
  }
  auto result = GetProfileTopK(profile, kSports, kBasketball,
                               TimeRange::Current(10 * kDay),
                               SortBy::kActionCount, kLike, 1, now);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].counts[kLike], 5);
  EXPECT_EQ(result->slices_scanned, 5u);
}

TEST(QueryTest, TopKTruncatesAndOrders) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  for (FeatureId fid = 1; fid <= 20; ++fid) {
    ASSERT_TRUE(profile
                    .Add(now - kDay, kSports, kBasketball, fid,
                         CountVector{static_cast<int64_t>(fid)})
                    .ok());
  }
  auto result = GetProfileTopK(profile, kSports, kBasketball,
                               TimeRange::Current(2 * kDay),
                               SortBy::kActionCount, kLike, 5, now);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result->features[i].fid, 20 - i);
  }
  EXPECT_EQ(result->features_merged, 20u);
}

TEST(QueryTest, SortByFeatureId) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  for (FeatureId fid : {30, 10, 20}) {
    ASSERT_TRUE(
        profile.Add(now - kDay, kSports, kBasketball, fid, CountVector{1})
            .ok());
  }
  auto result = GetProfileTopK(profile, kSports, kBasketball,
                               TimeRange::Current(2 * kDay),
                               SortBy::kFeatureId, 0, 0, now);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 3u);
  EXPECT_EQ(result->features[0].fid, 10u);
  EXPECT_EQ(result->features[2].fid, 30u);
}

TEST(QueryTest, SortByTimestampPrefersRecent) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  ASSERT_TRUE(
      profile.Add(now - 5 * kDay, kSports, kBasketball, 1, CountVector{100})
          .ok());
  ASSERT_TRUE(
      profile.Add(now - 1 * kDay, kSports, kBasketball, 2, CountVector{1})
          .ok());
  auto result = GetProfileTopK(profile, kSports, kBasketball,
                               TimeRange::Current(10 * kDay),
                               SortBy::kTimestamp, 0, 0, now);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 2u);
  EXPECT_EQ(result->features[0].fid, 2u);  // most recent first
}

TEST(QueryTest, RelativeWindowAnchorsOnLastAction) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  // User inactive for 50 days; last action at now-50d.
  ASSERT_TRUE(profile
                  .Add(now - 51 * kDay, kSports, kBasketball, 1,
                       CountVector{1})
                  .ok());
  ASSERT_TRUE(profile
                  .Add(now - 50 * kDay, kSports, kBasketball, 2,
                       CountVector{1})
                  .ok());
  // CURRENT 2d finds nothing; RELATIVE 2d finds both.
  auto current = GetProfileTopK(profile, kSports, kBasketball,
                                TimeRange::Current(2 * kDay),
                                SortBy::kActionCount, 0, 10, now);
  ASSERT_TRUE(current.ok());
  EXPECT_TRUE(current->features.empty());

  auto relative = GetProfileTopK(profile, kSports, kBasketball,
                                 TimeRange::Relative(2 * kDay),
                                 SortBy::kActionCount, 0, 10, now);
  ASSERT_TRUE(relative.ok());
  EXPECT_EQ(relative->features.size(), 2u);
}

TEST(QueryTest, AbsoluteWindowSelectsExactRange) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  for (int d = 1; d <= 10; ++d) {
    ASSERT_TRUE(profile
                    .Add(now - d * kDay, kSports, kBasketball,
                         static_cast<FeatureId>(d), CountVector{1})
                    .ok());
  }
  auto result = GetProfileTopK(
      profile, kSports, kBasketball,
      TimeRange::Absolute(now - 7 * kDay, now - 3 * kDay),
      SortBy::kFeatureId, 0, 0, now);
  ASSERT_TRUE(result.ok());
  // Days 4..7 land inside [now-7d, now-3d); day 3's write is at exactly
  // now-3d which is excluded (closed-open).
  ASSERT_EQ(result->features.size(), 4u);
  EXPECT_EQ(result->features.front().fid, 4u);
  EXPECT_EQ(result->features.back().fid, 7u);
}

TEST(QueryTest, InvalidRangesRejected) {
  ProfileData profile(kMillisPerMinute);
  auto bad_current = GetProfileTopK(profile, 1, std::nullopt,
                                    TimeRange::Current(0), SortBy::kFeatureId,
                                    0, 1, 1000);
  EXPECT_TRUE(bad_current.status().IsInvalidArgument());
  auto bad_abs = GetProfileTopK(profile, 1, std::nullopt,
                                TimeRange::Absolute(100, 100),
                                SortBy::kFeatureId, 0, 1, 1000);
  EXPECT_TRUE(bad_abs.status().IsInvalidArgument());
}

TEST(QueryTest, FilterCountAtLeast) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  for (FeatureId fid = 1; fid <= 10; ++fid) {
    ASSERT_TRUE(profile
                    .Add(now - kDay, kSports, kBasketball, fid,
                         CountVector{static_cast<int64_t>(fid)})
                    .ok());
  }
  FilterSpec filter;
  filter.op = FilterOp::kCountAtLeast;
  filter.action = kLike;
  filter.operand = 8;
  auto result = GetProfileFilter(profile, kSports, kBasketball,
                                 TimeRange::Current(2 * kDay), filter, now);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->features.size(), 3u);  // fids 8, 9, 10
}

TEST(QueryTest, FilterFidIn) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  for (FeatureId fid = 1; fid <= 10; ++fid) {
    ASSERT_TRUE(
        profile.Add(now - kDay, kSports, kBasketball, fid, CountVector{1})
            .ok());
  }
  FilterSpec filter;
  filter.op = FilterOp::kFidIn;
  filter.fids = {9, 3, 5};  // deliberately unsorted
  auto result = GetProfileFilter(profile, kSports, kBasketball,
                                 TimeRange::Current(2 * kDay), filter, now);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 3u);
  EXPECT_EQ(result->features[0].fid, 3u);
  EXPECT_EQ(result->features[1].fid, 5u);
  EXPECT_EQ(result->features[2].fid, 9u);
}

TEST(QueryTest, FilterFidNotIn) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  for (FeatureId fid = 1; fid <= 5; ++fid) {
    ASSERT_TRUE(
        profile.Add(now - kDay, kSports, kBasketball, fid, CountVector{1})
            .ok());
  }
  FilterSpec filter;
  filter.op = FilterOp::kFidNotIn;
  filter.fids = {2, 4};
  auto result = GetProfileFilter(profile, kSports, kBasketball,
                                 TimeRange::Current(2 * kDay), filter, now);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->features.size(), 3u);
}

TEST(QueryTest, ExponentialDecayRanksRecentHigher) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  // Old feature has more raw likes; recent one should win after decay.
  ASSERT_TRUE(
      profile.Add(now - 20 * kDay, kSports, kBasketball, 1, CountVector{10})
          .ok());
  ASSERT_TRUE(
      profile.Add(now - 1 * kDay, kSports, kBasketball, 2, CountVector{4})
          .ok());
  DecaySpec decay;
  decay.function = DecayFunction::kExponential;
  decay.factor = 0.8;  // 0.8^20 * 10 ≈ 0.12 << 0.8^1 * 4 = 3.2
  decay.unit_ms = kDay;
  auto result = GetProfileDecay(profile, kSports, kBasketball,
                                TimeRange::Current(30 * kDay), decay, now);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 2u);
  EXPECT_EQ(result->features[0].fid, 2u);
  // Raw counts stay unweighted.
  EXPECT_EQ(result->features[1].counts[0], 10);
  EXPECT_LT(result->features[1].WeightedAt(0), 1.0);
}

TEST(QueryTest, NoDecayKeepsWeightsEqualToCounts) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  ASSERT_TRUE(
      profile.Add(now - kDay, kSports, kBasketball, 1, CountVector{7}).ok());
  auto result = GetProfileTopK(profile, kSports, kBasketball,
                               TimeRange::Current(2 * kDay),
                               SortBy::kActionCount, 0, 1, now);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_DOUBLE_EQ(result->features[0].WeightedAt(0), 7.0);
}

TEST(QueryTest, InvalidDecayRejected) {
  ProfileData profile(kMillisPerMinute);
  DecaySpec decay;
  decay.function = DecayFunction::kExponential;
  decay.factor = 1.5;  // out of (0, 1]
  auto result = GetProfileDecay(profile, 1, std::nullopt,
                                TimeRange::Current(kDay), decay, 10 * kDay);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(DecaySpecTest, WeightCurves) {
  DecaySpec exp{DecayFunction::kExponential, 0.5, kDay};
  EXPECT_DOUBLE_EQ(exp.WeightForAge(0), 1.0);
  EXPECT_DOUBLE_EQ(exp.WeightForAge(kDay), 0.5);
  EXPECT_DOUBLE_EQ(exp.WeightForAge(2 * kDay), 0.25);

  DecaySpec linear{DecayFunction::kLinear, 0.25, kDay};
  EXPECT_DOUBLE_EQ(linear.WeightForAge(2 * kDay), 0.5);
  EXPECT_DOUBLE_EQ(linear.WeightForAge(10 * kDay), 0.0);  // floored

  DecaySpec step{DecayFunction::kStep, 0.1, kDay};
  EXPECT_DOUBLE_EQ(step.WeightForAge(kDay / 2), 1.0);
  EXPECT_DOUBLE_EQ(step.WeightForAge(3 * kDay), 0.1);
}

TEST(DecaySpecTest, ParseNames) {
  EXPECT_TRUE(ParseDecayFunction("EXP").ok());
  EXPECT_TRUE(ParseDecayFunction("LINEAR").ok());
  EXPECT_TRUE(ParseDecayFunction("STEP").ok());
  EXPECT_TRUE(ParseDecayFunction("NONE").ok());
  EXPECT_FALSE(ParseDecayFunction("QUADRATIC").ok());
}

TEST(QueryTest, EmptyProfileYieldsEmptyResult) {
  ProfileData profile(kMillisPerMinute);
  auto result =
      GetProfileTopK(profile, 1, std::nullopt, TimeRange::Current(kDay),
                     SortBy::kActionCount, 0, 10, 50 * kDay);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->features.empty());
  EXPECT_EQ(result->slices_scanned, 0u);
}

TEST(QueryTest, MaxReduceTakesMaxAcrossSlices) {
  const TimestampMs now = 100 * kDay;
  ProfileData profile(kMillisPerMinute);
  ASSERT_TRUE(
      profile.Add(now - 3 * kDay, 1, 1, 7, CountVector{50}).ok());
  ASSERT_TRUE(
      profile.Add(now - 1 * kDay, 1, 1, 7, CountVector{30}).ok());
  auto result = GetProfileTopK(profile, 1, 1, TimeRange::Current(5 * kDay),
                               SortBy::kActionCount, 0, 1, now,
                               ReduceFn::kMax);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->features.size(), 1u);
  EXPECT_EQ(result->features[0].counts[0], 50);  // max, not 80
}

// Property: ExecuteQuery's aggregation equals a brute-force reference over
// random profiles and windows.
class QueryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryPropertyTest, MatchesBruteForceReference) {
  Rng rng(GetParam());
  const TimestampMs now = 200 * kDay;
  ProfileData profile(kMillisPerMinute);
  struct Write {
    TimestampMs ts;
    SlotId slot;
    TypeId type;
    FeatureId fid;
    int64_t count;
  };
  std::vector<Write> writes;
  for (int i = 0; i < 300; ++i) {
    Write w;
    w.ts = now - static_cast<TimestampMs>(rng.Uniform(30 * kDay));
    w.slot = static_cast<SlotId>(rng.Uniform(3));
    w.type = static_cast<TypeId>(rng.Uniform(3));
    w.fid = rng.Uniform(40) + 1;
    w.count = static_cast<int64_t>(rng.Uniform(5)) + 1;
    writes.push_back(w);
    ASSERT_TRUE(
        profile.Add(w.ts, w.slot, w.type, w.fid, CountVector{w.count}).ok());
  }

  for (int trial = 0; trial < 20; ++trial) {
    const SlotId slot = static_cast<SlotId>(rng.Uniform(3));
    const TimestampMs from =
        now - static_cast<TimestampMs>(rng.Uniform(30 * kDay)) - kDay;
    const TimestampMs to = from + static_cast<TimestampMs>(
                                      rng.Uniform(20 * kDay)) + kDay;

    // Reference: sum counts of writes whose *slice* overlaps the window —
    // IPS aggregates at slice granularity, so find each write's slice.
    std::map<FeatureId, int64_t> expected;
    for (const auto& w : writes) {
      if (w.slot != slot) continue;
      for (const auto& slice : profile.slices()) {
        if (slice.Contains(w.ts)) {
          if (slice.Overlaps(from, to)) expected[w.fid] += w.count;
          break;
        }
      }
    }

    auto result = GetProfileTopK(profile, slot, std::nullopt,
                                 TimeRange::Absolute(from, to),
                                 SortBy::kFeatureId, 0, 0, now);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->features.size(), expected.size()) << "trial " << trial;
    for (const auto& f : result->features) {
      auto it = expected.find(f.fid);
      ASSERT_NE(it, expected.end());
      EXPECT_EQ(f.counts[0], it->second) << "fid " << f.fid;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryPropertyTest,
                         ::testing::Values(3, 17, 23, 57, 101));

// Buffer reuse must never leak state: one scratch + one result object,
// reused across queries of different shapes (bigger results, smaller
// results, different filters/sorts/profiles), must produce exactly what a
// fresh execution produces.
TEST(QueryTest, ReusedScratchMatchesFreshExecution) {
  const TimestampMs now = 100 * kDay;
  Rng rng(77);
  ProfileData big(kMillisPerMinute);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(big.Add(now - static_cast<TimestampMs>(
                                  rng.Uniform(9 * kDay)),
                        static_cast<SlotId>(1 + rng.Uniform(2)),
                        static_cast<TypeId>(rng.Uniform(3)),
                        rng.Uniform(200) + 1,
                        CountVector{static_cast<int64_t>(rng.Uniform(5)) + 1,
                                    static_cast<int64_t>(rng.Uniform(3))})
                    .ok());
  }
  ProfileData alice = AliceProfile(now);

  std::vector<std::pair<const ProfileData*, QuerySpec>> cases;
  {
    QuerySpec spec;  // wide unlimited scan (largest result)
    spec.slot = 1;
    spec.time_range = TimeRange::Current(10 * kDay);
    spec.sort_by = SortBy::kFeatureId;
    cases.emplace_back(&big, spec);

    spec.k = 5;  // shrink the result
    spec.sort_by = SortBy::kActionCount;
    cases.emplace_back(&big, spec);

    spec.filter.op = FilterOp::kCountAtLeast;  // filtered
    spec.filter.action = 0;
    spec.filter.operand = 4;
    cases.emplace_back(&big, spec);

    QuerySpec decayed;  // different profile, decay weights
    decayed.slot = kSports;
    decayed.type = kBasketball;
    decayed.time_range = TimeRange::Current(11 * kDay);
    decayed.decay.function = DecayFunction::kExponential;
    decayed.decay.factor = 0.5;
    decayed.decay.unit_ms = kDay;
    cases.emplace_back(&alice, decayed);
  }

  QueryScratch shared_scratch;
  QueryResult reused;
  for (int round = 0; round < 3; ++round) {
    for (const auto& [profile, spec] : cases) {
      ASSERT_TRUE(
          ExecuteQueryInto(*profile, spec, now, &shared_scratch, &reused)
              .ok());
      QueryScratch fresh_scratch;
      QueryResult fresh;
      ASSERT_TRUE(
          ExecuteQueryInto(*profile, spec, now, &fresh_scratch, &fresh).ok());
      ASSERT_EQ(reused.features.size(), fresh.features.size());
      EXPECT_EQ(reused.slices_scanned, fresh.slices_scanned);
      EXPECT_EQ(reused.features_merged, fresh.features_merged);
      for (size_t i = 0; i < fresh.features.size(); ++i) {
        EXPECT_EQ(reused.features[i].fid, fresh.features[i].fid);
        EXPECT_EQ(reused.features[i].counts, fresh.features[i].counts);
        EXPECT_EQ(reused.features[i].weighted, fresh.features[i].weighted);
        EXPECT_EQ(reused.features[i].newest_ms, fresh.features[i].newest_ms);
      }
    }
  }
}

}  // namespace
}  // namespace ips
