#include "query/merger.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace ips {
namespace {

TEST(MergerTest, EmptyInputs) {
  EXPECT_TRUE(MergeSortedRuns({}, ReduceFn::kSum).empty());
  IndexedFeatureStats empty;
  EXPECT_TRUE(MergeSortedRuns({&empty, &empty}, ReduceFn::kSum).empty());
}

TEST(MergerTest, SingleRunCopied) {
  IndexedFeatureStats run;
  run.Upsert(1, CountVector{1});
  run.Upsert(5, CountVector{5});
  IndexedFeatureStats merged = MergeSortedRuns({&run}, ReduceFn::kSum);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.Find(5)->counts[0], 5);
}

TEST(MergerTest, TwoRunsWithOverlap) {
  IndexedFeatureStats a, b;
  a.Upsert(1, CountVector{1});
  a.Upsert(3, CountVector{3});
  b.Upsert(3, CountVector{30});
  b.Upsert(4, CountVector{4});
  IndexedFeatureStats merged = MergeSortedRuns({&a, &b}, ReduceFn::kSum);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_TRUE(merged.IsSorted());
  EXPECT_EQ(merged.Find(3)->counts[0], 33);
}

TEST(MergerTest, MaxReduce) {
  IndexedFeatureStats a, b;
  a.Upsert(7, CountVector{10, 1});
  b.Upsert(7, CountVector{3, 9});
  IndexedFeatureStats merged = MergeSortedRuns({&a, &b}, ReduceFn::kMax);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.Find(7)->counts[0], 10);
  EXPECT_EQ(merged.Find(7)->counts[1], 9);
}

class MergerPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(MergerPropertyTest, ManyRunsMatchReference) {
  const auto [seed, num_runs] = GetParam();
  Rng rng(seed);
  std::vector<IndexedFeatureStats> runs(num_runs);
  std::map<FeatureId, int64_t> reference;
  for (auto& run : runs) {
    const int entries = static_cast<int>(rng.Uniform(60));
    for (int i = 0; i < entries; ++i) {
      const FeatureId fid = rng.Uniform(100);
      const int64_t count = static_cast<int64_t>(rng.Uniform(9)) + 1;
      run.Upsert(fid, CountVector{count});
      reference[fid] += count;
    }
    ASSERT_TRUE(run.IsSorted());
  }
  std::vector<const IndexedFeatureStats*> run_ptrs;
  for (const auto& run : runs) run_ptrs.push_back(&run);
  IndexedFeatureStats merged = MergeSortedRuns(run_ptrs, ReduceFn::kSum);
  EXPECT_TRUE(merged.IsSorted());
  ASSERT_EQ(merged.size(), reference.size());
  for (const auto& [fid, total] : reference) {
    const FeatureStat* stat = merged.Find(fid);
    ASSERT_NE(stat, nullptr);
    EXPECT_EQ(stat->counts[0], total);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MergerPropertyTest,
    ::testing::Combine(::testing::Values(1u, 5u, 9u),
                       ::testing::Values(2, 3, 8, 16)));

}  // namespace
}  // namespace ips
