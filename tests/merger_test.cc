#include "query/merger.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace ips {
namespace {

TEST(MergerTest, EmptyInputs) {
  EXPECT_TRUE(MergeSortedRuns({}, ReduceFn::kSum).empty());
  IndexedFeatureStats empty;
  EXPECT_TRUE(MergeSortedRuns({&empty, &empty}, ReduceFn::kSum).empty());
}

TEST(MergerTest, SingleRunCopied) {
  IndexedFeatureStats run;
  run.Upsert(1, CountVector{1});
  run.Upsert(5, CountVector{5});
  IndexedFeatureStats merged = MergeSortedRuns({&run}, ReduceFn::kSum);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.Find(5)->counts[0], 5);
}

TEST(MergerTest, SingleRunPassthroughDoesNotCopy) {
  // The pointer-returning variant must hand back the input run itself for a
  // single-run merge — the serving path relies on this to skip the copy —
  // and leave the output buffer untouched.
  IndexedFeatureStats run;
  run.Upsert(2, CountVector{2});
  run.Upsert(9, CountVector{9});
  IndexedFeatureStats out;
  const IndexedFeatureStats* merged =
      MergeSortedRuns({&run}, ReduceFn::kSum, &out);
  EXPECT_EQ(merged, &run);
  EXPECT_TRUE(out.empty());

  // Multi-run merges land in the caller's buffer instead.
  IndexedFeatureStats other;
  other.Upsert(9, CountVector{1});
  merged = MergeSortedRuns({&run, &other}, ReduceFn::kSum, &out);
  EXPECT_EQ(merged, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.Find(9)->counts[0], 10);
}

TEST(MergerTest, EmptyRunsAmongNonEmptyAreSkipped) {
  IndexedFeatureStats empty, a, b;
  a.Upsert(1, CountVector{1});
  b.Upsert(1, CountVector{2});
  IndexedFeatureStats merged =
      MergeSortedRuns({&empty, &a, &empty, &b, &empty}, ReduceFn::kSum);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.Find(1)->counts[0], 3);
}

TEST(MergerTest, DuplicateFidReduceOrderIsRunOrder) {
  // Same fid in many runs must reduce pairwise in run order for BOTH merge
  // strategies (scan for <= 16 runs, heap beyond). kMax makes ordering
  // bugs visible through wider-than-either count vectors.
  for (const size_t num_runs : {3u, 20u}) {
    std::vector<IndexedFeatureStats> runs(num_runs);
    for (size_t r = 0; r < num_runs; ++r) {
      CountVector counts{static_cast<int64_t>(r + 1)};
      if (r % 2 == 1) {
        counts = CountVector{0, static_cast<int64_t>(100 + r)};
      }
      runs[r].Upsert(42, counts);
      runs[r].Upsert(1000 + static_cast<FeatureId>(r), CountVector{1});
    }
    std::vector<const IndexedFeatureStats*> ptrs;
    for (const auto& run : runs) ptrs.push_back(&run);
    IndexedFeatureStats merged = MergeSortedRuns(ptrs, ReduceFn::kMax);
    EXPECT_TRUE(merged.IsSorted());
    ASSERT_EQ(merged.size(), num_runs + 1);
    const FeatureStat* stat = merged.Find(42);
    ASSERT_NE(stat, nullptr);
    // Max over dimension 0 is the largest odd... even-run value (r+1 for
    // even r), over dimension 1 the largest odd-run value (100 + r).
    ASSERT_EQ(stat->counts.size(), 2u);
    const size_t last_even = (num_runs - 1) & ~size_t{1};
    size_t last_odd = num_runs - 1;
    if (last_odd % 2 == 0) --last_odd;
    EXPECT_EQ(stat->counts[0], static_cast<int64_t>(last_even + 1));
    EXPECT_EQ(stat->counts[1], static_cast<int64_t>(100 + last_odd));
  }
}

TEST(MergerDeathTest, UnsortedRunAborts) {
  // A violated fid_index sort order is data corruption; the merger must
  // refuse to produce silently-wrong aggregates, in release builds too
  // (plain assert() would vanish under NDEBUG).
  IndexedFeatureStats good, bad;
  good.Upsert(1, CountVector{1});
  good.Upsert(2, CountVector{1});
  bad.AppendSortedUnchecked(FeatureStat{9, CountVector{1}});
  bad.AppendSortedUnchecked(FeatureStat{3, CountVector{1}});  // descending
  ASSERT_FALSE(bad.IsSorted());
  EXPECT_DEATH(MergeSortedRuns({&good, &bad}, ReduceFn::kSum),
               "violates the sorted invariant");

  // The heap strategy (> 16 runs) must catch it too.
  std::vector<const IndexedFeatureStats*> many(20, &good);
  many.push_back(&bad);
  EXPECT_DEATH(MergeSortedRuns(many, ReduceFn::kSum),
               "violates the sorted invariant");
}

TEST(MergerTest, TwoRunsWithOverlap) {
  IndexedFeatureStats a, b;
  a.Upsert(1, CountVector{1});
  a.Upsert(3, CountVector{3});
  b.Upsert(3, CountVector{30});
  b.Upsert(4, CountVector{4});
  IndexedFeatureStats merged = MergeSortedRuns({&a, &b}, ReduceFn::kSum);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_TRUE(merged.IsSorted());
  EXPECT_EQ(merged.Find(3)->counts[0], 33);
}

TEST(MergerTest, MaxReduce) {
  IndexedFeatureStats a, b;
  a.Upsert(7, CountVector{10, 1});
  b.Upsert(7, CountVector{3, 9});
  IndexedFeatureStats merged = MergeSortedRuns({&a, &b}, ReduceFn::kMax);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.Find(7)->counts[0], 10);
  EXPECT_EQ(merged.Find(7)->counts[1], 9);
}

class MergerPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(MergerPropertyTest, ManyRunsMatchReference) {
  const auto [seed, num_runs] = GetParam();
  Rng rng(seed);
  std::vector<IndexedFeatureStats> runs(num_runs);
  std::map<FeatureId, int64_t> reference;
  for (auto& run : runs) {
    const int entries = static_cast<int>(rng.Uniform(60));
    for (int i = 0; i < entries; ++i) {
      const FeatureId fid = rng.Uniform(100);
      const int64_t count = static_cast<int64_t>(rng.Uniform(9)) + 1;
      run.Upsert(fid, CountVector{count});
      reference[fid] += count;
    }
    ASSERT_TRUE(run.IsSorted());
  }
  std::vector<const IndexedFeatureStats*> run_ptrs;
  for (const auto& run : runs) run_ptrs.push_back(&run);
  IndexedFeatureStats merged = MergeSortedRuns(run_ptrs, ReduceFn::kSum);
  EXPECT_TRUE(merged.IsSorted());
  ASSERT_EQ(merged.size(), reference.size());
  for (const auto& [fid, total] : reference) {
    const FeatureStat* stat = merged.Find(fid);
    ASSERT_NE(stat, nullptr);
    EXPECT_EQ(stat->counts[0], total);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MergerPropertyTest,
    ::testing::Combine(::testing::Values(1u, 5u, 9u),
                       ::testing::Values(2, 3, 8, 16)));

}  // namespace
}  // namespace ips
