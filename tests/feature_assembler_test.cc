#include "server/feature_assembler.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "kvstore/mem_kv_store.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;

class FeatureAssemblerTest : public ::testing::Test {
 protected:
  FeatureAssemblerTest()
      : clock_(100 * kDay), instance_(InstanceOptions(), &kv_, &clock_) {
    schema_ = DefaultTableSchema("user_profile");
    schema_.actions = {"click", "like"};
    EXPECT_TRUE(instance_.CreateTable(schema_).ok());
    // User 1: clicks in slot 1 (fids 1..5 with rising like counts), and
    // slot 2 content.
    for (int i = 1; i <= 5; ++i) {
      EXPECT_TRUE(instance_
                      .AddProfile("seed", "user_profile", 1,
                                  clock_.NowMs() - i * kMinute, 1, 1,
                                  static_cast<FeatureId>(i),
                                  CountVector{1, static_cast<int64_t>(i)})
                      .ok());
    }
    EXPECT_TRUE(instance_
                    .AddProfile("seed", "user_profile", 1,
                                clock_.NowMs() - kMinute, 2, 1, 100,
                                CountVector{3, 0})
                    .ok());
  }

  static IpsInstanceOptions InstanceOptions() {
    IpsInstanceOptions options;
    options.start_background_threads = false;
    options.cache.start_background_threads = false;
    options.compaction.synchronous = true;
    options.isolation_enabled = false;
    return options;
  }

  static constexpr const char* kFeatureSetJson = R"({
    "features": [
      {"name": "top_likes_s1", "table": "user_profile", "slot": 1,
       "window": {"kind": "CURRENT", "span": "1d"},
       "sort": {"by": "count", "action": "like"}, "k": 3},
      {"name": "clicks_s2", "table": "user_profile", "slot": 2,
       "window": {"kind": "CURRENT", "span": "1d"},
       "sort": {"by": "count", "action": "click"}, "k": 10}
    ]
  })";

  ManualClock clock_;
  MemKvStore kv_;
  IpsInstance instance_;
  TableSchema schema_;
};

TEST_F(FeatureAssemblerTest, AssemblesAllGroups) {
  FeatureAssembler assembler({}, &instance_);
  ASSERT_TRUE(assembler.LoadFeatureSetJson(kFeatureSetJson, &schema_).ok());
  EXPECT_EQ(assembler.FeatureCount(), 2u);

  auto sample = assembler.Assemble(1);
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();
  ASSERT_EQ(sample->features.size(), 2u);
  const AssembledFeature& likes = sample->features[0];
  EXPECT_EQ(likes.name, "top_likes_s1");
  ASSERT_EQ(likes.fids.size(), 3u);  // k = 3
  EXPECT_EQ(likes.fids[0], 5u);      // most likes first
  EXPECT_DOUBLE_EQ(likes.values[0], 5.0);
  const AssembledFeature& clicks = sample->features[1];
  ASSERT_EQ(clicks.fids.size(), 1u);
  EXPECT_EQ(clicks.fids[0], 100u);
  EXPECT_EQ(sample->TotalValues(), 4u);
}

TEST_F(FeatureAssemblerTest, UnknownUserYieldsEmptyGroups) {
  FeatureAssembler assembler({}, &instance_);
  ASSERT_TRUE(assembler.LoadFeatureSetJson(kFeatureSetJson, &schema_).ok());
  auto sample = assembler.Assemble(999999);
  ASSERT_TRUE(sample.ok());
  ASSERT_EQ(sample->features.size(), 2u);
  EXPECT_TRUE(sample->features[0].fids.empty());
  EXPECT_TRUE(sample->features[1].fids.empty());
}

TEST_F(FeatureAssemblerTest, TrainingSampleFlushedToTopic) {
  MessageLog log(2);
  FeatureAssemblerOptions options;
  options.training_topic = "training";
  FeatureAssembler assembler(options, &instance_, &log);
  ASSERT_TRUE(assembler.LoadFeatureSetJson(kFeatureSetJson, &schema_).ok());
  auto sample = assembler.Assemble(1);
  ASSERT_TRUE(sample.ok());

  // The flushed sample decodes to exactly what serving saw — the
  // training-serving-skew guarantee.
  const size_t partition = log.PartitionFor(1);
  const auto records = log.Read("training", partition, 0, 10);
  ASSERT_EQ(records.size(), 1u);
  AssembledSample decoded;
  ASSERT_TRUE(DecodeSample(records[0].value, &decoded));
  EXPECT_EQ(decoded.uid, 1u);
  ASSERT_EQ(decoded.features.size(), sample->features.size());
  for (size_t g = 0; g < decoded.features.size(); ++g) {
    EXPECT_EQ(decoded.features[g].name, sample->features[g].name);
    EXPECT_EQ(decoded.features[g].fids, sample->features[g].fids);
    ASSERT_EQ(decoded.features[g].values.size(),
              sample->features[g].values.size());
    for (size_t i = 0; i < decoded.features[g].values.size(); ++i) {
      EXPECT_NEAR(decoded.features[g].values[i],
                  sample->features[g].values[i], 0.001);
    }
  }
}

TEST_F(FeatureAssemblerTest, AssembleBatchOneMultiQueryPerSpec) {
  FeatureAssembler assembler({}, &instance_);
  ASSERT_TRUE(assembler.LoadFeatureSetJson(kFeatureSetJson, &schema_).ok());

  Histogram* rpcs =
      instance_.metrics()->GetHistogram("server.multi_query_batch");
  const int64_t before = rpcs->count();
  // A candidate list with a known user, an unknown one, and a duplicate.
  const std::vector<ProfileId> uids = {1, 999999, 1};
  auto samples = assembler.AssembleBatch(uids);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  // Two specs, one MultiQuery each — independent of the candidate count.
  EXPECT_EQ(rpcs->count() - before, 2);

  ASSERT_EQ(samples->size(), 3u);
  const AssembledSample& known = (*samples)[0];
  EXPECT_EQ(known.uid, 1u);
  ASSERT_EQ(known.features.size(), 2u);
  ASSERT_EQ(known.features[0].fids.size(), 3u);
  EXPECT_EQ(known.features[0].fids[0], 5u);
  const AssembledSample& unknown = (*samples)[1];
  EXPECT_EQ(unknown.uid, 999999u);
  ASSERT_EQ(unknown.features.size(), 2u);
  EXPECT_TRUE(unknown.features[0].fids.empty());
  EXPECT_TRUE(unknown.features[1].fids.empty());
  // The duplicate candidate assembles the same sample as its first
  // occurrence.
  EXPECT_EQ((*samples)[2].TotalValues(), known.TotalValues());
}

TEST_F(FeatureAssemblerTest, AssembleBatchFlushesEverySampleToTraining) {
  MessageLog log(2);
  FeatureAssemblerOptions options;
  options.training_topic = "training";
  FeatureAssembler assembler(options, &instance_, &log);
  ASSERT_TRUE(assembler.LoadFeatureSetJson(kFeatureSetJson, &schema_).ok());
  auto samples = assembler.AssembleBatch(std::vector<ProfileId>{1, 2, 3});
  ASSERT_TRUE(samples.ok());
  size_t flushed = 0;
  for (size_t partition = 0; partition < 2; ++partition) {
    flushed += log.Read("training", partition, 0, 100).size();
  }
  EXPECT_EQ(flushed, 3u);
}

TEST_F(FeatureAssemblerTest, RejectsSetReferencingUnknownTable) {
  FeatureAssembler assembler({}, &instance_);
  Status status = assembler.LoadFeatureSetJson(R"({
    "features": [{"name": "f", "table": "nope", "slot": 1}]})");
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(assembler.FeatureCount(), 0u);  // old (empty) set stays
}

TEST_F(FeatureAssemblerTest, HotReloadViaConfigRegistry) {
  FeatureAssembler assembler({}, &instance_);
  ConfigRegistry registry;
  assembler.AttachConfigRegistry(&registry, "features/feed", &schema_);

  ASSERT_TRUE(registry.PublishJson("features/feed", kFeatureSetJson).ok());
  EXPECT_EQ(assembler.FeatureCount(), 2u);

  // A malformed publish leaves the active set untouched.
  ASSERT_TRUE(
      registry.PublishJson("features/feed", R"({"features": []})").ok());
  EXPECT_EQ(assembler.FeatureCount(), 2u);

  // A smaller valid set replaces it.
  ASSERT_TRUE(registry
                  .PublishJson("features/feed", R"({"features": [
                    {"name": "only", "table": "user_profile", "slot": 1}
                  ]})")
                  .ok());
  EXPECT_EQ(assembler.FeatureCount(), 1u);
}

TEST_F(FeatureAssemblerTest, QuotaRejectionPropagates) {
  FeatureAssembler assembler({}, &instance_);
  ASSERT_TRUE(assembler.LoadFeatureSetJson(kFeatureSetJson, &schema_).ok());
  instance_.quota().SetQuota("feature-assembler", 1.0);
  // First assemble uses the single token for its first feature; the second
  // feature (and thus the sample) hits the quota.
  auto sample = assembler.Assemble(1);
  EXPECT_TRUE(sample.status().IsResourceExhausted());
}

TEST(AssembledSampleCodecTest, RoundTripsEdgeCases) {
  AssembledSample sample;
  sample.uid = 0;
  sample.assembled_at_ms = -1;
  AssembledFeature empty_group;
  empty_group.name = "empty";
  sample.features.push_back(empty_group);
  AssembledFeature group;
  group.name = "g";
  group.fids = {1, 0xFFFFFFFFFFFFFFFFULL};
  group.values = {0.0, -2.5};
  sample.features.push_back(group);

  AssembledSample decoded;
  ASSERT_TRUE(DecodeSample(EncodeSample(sample), &decoded));
  ASSERT_EQ(decoded.features.size(), 2u);
  EXPECT_TRUE(decoded.features[0].fids.empty());
  EXPECT_EQ(decoded.features[1].fids[1], 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_NEAR(decoded.features[1].values[1], -2.5, 0.001);

  AssembledSample bad;
  EXPECT_FALSE(DecodeSample("junk", &bad));
}

}  // namespace
}  // namespace ips
