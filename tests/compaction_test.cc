#include "compaction/compactor.h"
#include "compaction/manager.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "compaction/controller.h"
#include "query/query.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kHour = kMillisPerHour;
constexpr int64_t kDay = kMillisPerDay;

CountVector One() { return CountVector{1}; }

TableSchema MinuteLadderSchema() {
  TableSchema schema;
  schema.name = "t";
  schema.actions = {"click"};
  schema.write_granularity_ms = kMinute;
  // Fig 10 / Listing 2 shape: raw minutes for the last 10 minutes, then
  // 10-minute windows out to an hour, then hourly.
  schema.time_dimensions = {
      {kMinute, 0, 10 * kMinute},
      {10 * kMinute, 10 * kMinute, kHour},
      {kHour, kHour, kDay},
  };
  return schema;
}

TEST(CompactorTest, Figure10StyleMerge) {
  TableSchema schema = MinuteLadderSchema();
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  // Six consecutive minute-slices, all 20..25 minutes old: they fall into
  // the 10-minute rung and should consolidate into wider windows.
  const TimestampMs base = 100 * kHour;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(profile
                    .Add(base + i * kMinute, 1, 1,
                         static_cast<FeatureId>(i + 1), One())
                    .ok());
  }
  ASSERT_EQ(profile.SliceCount(), 6u);
  const TimestampMs now = base + 25 * kMinute;
  const size_t merged = compactor.Compact(profile, now);
  EXPECT_GT(merged, 0u);
  EXPECT_LT(profile.SliceCount(), 6u);
  EXPECT_TRUE(profile.CheckInvariants());
  // No data lost: all six features still present.
  EXPECT_EQ(profile.TotalFeatures(), 6u);
}

TEST(CompactorTest, CompactAggregatesSameFeature) {
  TableSchema schema = MinuteLadderSchema();
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  const TimestampMs base = 100 * kHour;
  // Same feature in adjacent minute slices.
  ASSERT_TRUE(profile.Add(base, 1, 1, 7, CountVector{2}).ok());
  ASSERT_TRUE(profile.Add(base + kMinute, 1, 1, 7, CountVector{3}).ok());
  compactor.Compact(profile, base + 30 * kMinute);
  ASSERT_EQ(profile.SliceCount(), 1u);
  EXPECT_EQ(profile.slices().front().FindSlot(1)->Find(1)->Find(7)->counts[0],
            5);
}

TEST(CompactorTest, FreshSlicesNotMerged) {
  TableSchema schema = MinuteLadderSchema();
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  const TimestampMs now = 100 * kHour;
  // Two slices 2 and 3 minutes old: still in the raw-minute rung.
  ASSERT_TRUE(profile.Add(now - 2 * kMinute, 1, 1, 1, One()).ok());
  ASSERT_TRUE(profile.Add(now - 3 * kMinute, 1, 1, 2, One()).ok());
  EXPECT_EQ(compactor.Compact(profile, now), 0u);
  EXPECT_EQ(profile.SliceCount(), 2u);
}

TEST(CompactorTest, MergedWindowNeverExceedsRungGranularity) {
  TableSchema schema = MinuteLadderSchema();
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  const TimestampMs base = 200 * kHour;
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(profile
                    .Add(base + i * kMinute, 1, 1,
                         static_cast<FeatureId>(i + 1), One())
                    .ok());
  }
  const TimestampMs now = base + 121 * kMinute + kDay;
  compactor.Compact(profile, now);
  EXPECT_TRUE(profile.CheckInvariants());
  for (const auto& slice : profile.slices()) {
    // Everything is >1h old here, so the widest allowed window is 1h.
    EXPECT_LE(slice.DurationMs(), kHour);
  }
}

TEST(CompactorTest, TruncateByAge) {
  TableSchema schema = MinuteLadderSchema();
  schema.truncate.max_age_ms = kHour;
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  const TimestampMs now = 100 * kHour;
  ASSERT_TRUE(profile.Add(now - 2 * kHour, 1, 1, 1, One()).ok());   // old
  ASSERT_TRUE(profile.Add(now - 90 * kMinute, 1, 1, 2, One()).ok());  // old
  ASSERT_TRUE(profile.Add(now - 10 * kMinute, 1, 1, 3, One()).ok());  // keep
  EXPECT_EQ(compactor.Truncate(profile, now), 2u);
  EXPECT_EQ(profile.SliceCount(), 1u);
  EXPECT_NE(profile.slices().front().FindSlot(1)->Find(1)->Find(3), nullptr);
}

TEST(CompactorTest, TruncateByCountKeepsNewest) {
  // The Fig 11 "truncate by count" example: keep the first five slices.
  TableSchema schema = MinuteLadderSchema();
  schema.truncate.max_slices = 5;
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  const TimestampMs base = 100 * kHour;
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(profile
                    .Add(base + i * kMinute, 1, 1,
                         static_cast<FeatureId>(i + 1), One())
                    .ok());
  }
  EXPECT_EQ(compactor.Truncate(profile, base + 10 * kMinute), 4u);
  EXPECT_EQ(profile.SliceCount(), 5u);
  // The newest five features (5..9) survive.
  EXPECT_EQ(profile.TotalFeatures(), 5u);
  EXPECT_TRUE(profile.slices().front().Contains(base + 8 * kMinute));
}

TEST(CompactorTest, TruncateNoPolicyNoOp) {
  TableSchema schema = MinuteLadderSchema();
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  ASSERT_TRUE(profile.Add(1000, 1, 1, 1, One()).ok());
  EXPECT_EQ(compactor.Truncate(profile, 100 * kDay), 0u);
}

TEST(CompactorTest, ShrinkKeepsTopFeaturesByWeightedScore) {
  TableSchema schema = MinuteLadderSchema();
  schema.shrink.default_retain = 3;
  schema.shrink.action_weights = {1.0, 10.0};  // second action dominates
  schema.shrink.freshness_horizon_ms = kMinute;
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  const TimestampMs base = 100 * kHour;
  // Feature 1 has many clicks; features 2-4 have one heavily-weighted like.
  ASSERT_TRUE(profile.Add(base, 1, 1, 1, CountVector{5, 0}).ok());
  ASSERT_TRUE(profile.Add(base, 1, 1, 2, CountVector{0, 1}).ok());
  ASSERT_TRUE(profile.Add(base, 1, 1, 3, CountVector{0, 1}).ok());
  ASSERT_TRUE(profile.Add(base, 1, 1, 4, CountVector{0, 1}).ok());
  ASSERT_TRUE(profile.Add(base, 1, 1, 5, CountVector{1, 0}).ok());
  const TimestampMs now = base + kHour;
  EXPECT_EQ(compactor.Shrink(profile, now), 2u);
  const auto* stats = profile.slices().front().FindSlot(1)->Find(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->size(), 3u);
  // Weighted scores: f2-4 = 10, f1 = 5, f5 = 1 -> f5 and one of f1 gone;
  // exact survivors: 2, 3, 4.
  EXPECT_EQ(stats->Find(5), nullptr);
  EXPECT_EQ(stats->Find(1), nullptr);
  EXPECT_NE(stats->Find(2), nullptr);
}

TEST(CompactorTest, ShrinkSparesFreshSlices) {
  TableSchema schema = MinuteLadderSchema();
  schema.shrink.default_retain = 1;
  schema.shrink.freshness_horizon_ms = kHour;
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  const TimestampMs now = 100 * kHour;
  // Recent slice with many features: inside the freshness horizon.
  for (FeatureId fid = 1; fid <= 5; ++fid) {
    ASSERT_TRUE(profile.Add(now - 2 * kMinute, 1, 1, fid, One()).ok());
  }
  EXPECT_EQ(compactor.Shrink(profile, now), 0u);
  EXPECT_EQ(profile.TotalFeatures(), 5u);
}

TEST(CompactorTest, ShrinkPerSlotBudgets) {
  TableSchema schema = MinuteLadderSchema();
  schema.shrink.default_retain = 1;
  schema.shrink.retain_per_slot[2] = 10;  // slot 2 keeps everything
  schema.shrink.freshness_horizon_ms = 0;
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  const TimestampMs base = 100 * kHour;
  for (FeatureId fid = 1; fid <= 4; ++fid) {
    ASSERT_TRUE(profile.Add(base, 1, 1, fid, One()).ok());
    ASSERT_TRUE(profile.Add(base, 2, 1, fid, One()).ok());
  }
  compactor.Shrink(profile, base + kDay);
  const auto& slice = profile.slices().front();
  EXPECT_EQ(slice.FindSlot(1)->TotalFeatures(), 1u);
  EXPECT_EQ(slice.FindSlot(2)->TotalFeatures(), 4u);
}

TEST(CompactorTest, ShrinkBudgetAcrossTypesInSlot) {
  TableSchema schema = MinuteLadderSchema();
  schema.shrink.default_retain = 2;
  schema.shrink.freshness_horizon_ms = 0;
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  const TimestampMs base = 100 * kHour;
  // Two types in slot 1: budget applies to the slot as a whole.
  ASSERT_TRUE(profile.Add(base, 1, 1, 1, CountVector{9}).ok());
  ASSERT_TRUE(profile.Add(base, 1, 2, 2, CountVector{8}).ok());
  ASSERT_TRUE(profile.Add(base, 1, 1, 3, CountVector{1}).ok());
  ASSERT_TRUE(profile.Add(base, 1, 2, 4, CountVector{1}).ok());
  compactor.Shrink(profile, base + kDay);
  EXPECT_EQ(profile.slices().front().FindSlot(1)->TotalFeatures(), 2u);
  EXPECT_NE(profile.slices().front().FindSlot(1)->Find(1)->Find(1), nullptr);
  EXPECT_NE(profile.slices().front().FindSlot(1)->Find(2)->Find(2), nullptr);
}

TEST(CompactorTest, FullCompactReducesBytes) {
  TableSchema schema = MinuteLadderSchema();
  schema.truncate.max_age_ms = kDay;
  schema.shrink.default_retain = 10;
  schema.shrink.freshness_horizon_ms = kHour;
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  Rng rng(4);
  const TimestampMs now = 100 * kDay;
  for (int i = 0; i < 2000; ++i) {
    const TimestampMs ts = now - static_cast<TimestampMs>(
                                     rng.Uniform(2 * kDay));
    ASSERT_TRUE(profile
                    .Add(ts, static_cast<SlotId>(rng.Uniform(4)), 1,
                         rng.Uniform(500) + 1, One())
                    .ok());
  }
  const CompactionStats stats = compactor.FullCompact(profile, now);
  EXPECT_TRUE(stats.AnyWork());
  EXPECT_LT(stats.bytes_after, stats.bytes_before);
  EXPECT_TRUE(profile.CheckInvariants());
}

TEST(CompactorTest, PartialCompactBoundsMerges) {
  TableSchema schema = MinuteLadderSchema();
  Compactor compactor(&schema);
  ProfileData profile(kMinute);
  const TimestampMs base = 100 * kHour;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(profile
                    .Add(base + i * kMinute, 1, 1,
                         static_cast<FeatureId>(i + 1), One())
                    .ok());
  }
  const TimestampMs now = base + 41 * kMinute + kDay;
  const CompactionStats stats = compactor.PartialCompact(profile, now);
  EXPECT_LE(stats.slices_merged, 4u);  // the partial merge budget
  EXPECT_TRUE(profile.CheckInvariants());
}

TEST(CompactorTest, ImportanceScoreUsesWeights) {
  TableSchema schema = MinuteLadderSchema();
  schema.shrink.action_weights = {1.0, 2.0, 3.0};
  Compactor compactor(&schema);
  EXPECT_DOUBLE_EQ(compactor.ImportanceScore(CountVector{1, 1, 1}), 6.0);
  EXPECT_DOUBLE_EQ(compactor.ImportanceScore(CountVector{2, 0, 0}), 2.0);
  // Missing weights default to 1.
  EXPECT_DOUBLE_EQ(compactor.ImportanceScore(CountVector{0, 0, 0, 4}), 4.0);
}

// Property: compaction at any moment preserves total counts (Compact is
// lossless in counts) when no truncate/shrink configured.
class CompactionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompactionPropertyTest, CompactPreservesTotals) {
  TableSchema schema = MinuteLadderSchema();
  Compactor compactor(&schema);
  Rng rng(GetParam());
  ProfileData profile(kMinute);
  const TimestampMs now = 100 * kDay;
  int64_t total_written = 0;
  for (int i = 0; i < 500; ++i) {
    const TimestampMs ts = now - static_cast<TimestampMs>(
                                     rng.Uniform(3 * kDay));
    const int64_t count = static_cast<int64_t>(rng.Uniform(4)) + 1;
    total_written += count;
    ASSERT_TRUE(profile
                    .Add(ts, static_cast<SlotId>(rng.Uniform(3)),
                         static_cast<TypeId>(rng.Uniform(3)),
                         rng.Uniform(50) + 1, CountVector{count})
                    .ok());
    if (i % 50 == 49) compactor.Compact(profile, now);
  }
  compactor.Compact(profile, now);
  ASSERT_TRUE(profile.CheckInvariants());
  int64_t total_stored = 0;
  for (const auto& slice : profile.slices()) {
    for (const auto& [slot, set] : slice.slots()) {
      for (const auto& [type, stats] : set.types()) {
        for (const auto& stat : stats.stats()) {
          total_stored += stat.counts.Total();
        }
      }
    }
  }
  EXPECT_EQ(total_stored, total_written);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionPropertyTest,
                         ::testing::Values(2, 8, 21, 55));

// Property: over a whole-history window, query results are identical before
// and after Compact — the paper's claim that compaction "does not drop any
// data" and only reduces time precision (which a full-history window cannot
// observe).
class CompactQueryEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompactQueryEquivalenceTest, FullWindowResultsUnchanged) {
  TableSchema schema = MinuteLadderSchema();
  Compactor compactor(&schema);
  Rng rng(GetParam());
  ProfileData profile(kMinute);
  const TimestampMs now = 50 * kDay;
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(profile
                    .Add(now - static_cast<TimestampMs>(
                                   rng.Uniform(10 * kDay)),
                         static_cast<SlotId>(rng.Uniform(3)),
                         static_cast<TypeId>(rng.Uniform(3)),
                         rng.Uniform(80) + 1,
                         CountVector{static_cast<int64_t>(rng.Uniform(3)) +
                                     1})
                    .ok());
  }
  const TimeRange window = TimeRange::Absolute(0, now + kDay);
  auto before = GetProfileTopK(profile, 1, std::nullopt, window,
                               SortBy::kFeatureId, 0, 0, now);
  ASSERT_TRUE(before.ok());

  compactor.Compact(profile, now);
  ASSERT_TRUE(profile.CheckInvariants());

  auto after = GetProfileTopK(profile, 1, std::nullopt, window,
                              SortBy::kFeatureId, 0, 0, now);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->features.size(), before->features.size());
  for (size_t i = 0; i < after->features.size(); ++i) {
    EXPECT_EQ(after->features[i].fid, before->features[i].fid);
    EXPECT_EQ(after->features[i].counts, before->features[i].counts);
  }
  // And the scan got cheaper: fewer slices cover the same history.
  EXPECT_LT(after->slices_scanned, before->slices_scanned);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactQueryEquivalenceTest,
                         ::testing::Values(3, 14, 41));

// ------------------------------------------------------ CompactionManager ---

TEST(CompactionManagerTest, SynchronousModeRunsInline) {
  ManualClock clock(0);
  CompactionManagerOptions options;
  options.synchronous = true;
  options.min_interval_ms = 1000;
  std::atomic<int> runs{0};
  CompactionManager manager(options, &clock,
                            [&](ProfileId, bool full) {
                              EXPECT_TRUE(full);
                              runs.fetch_add(1);
                            });
  EXPECT_TRUE(manager.MaybeTrigger(1));
  EXPECT_EQ(runs.load(), 1);
}

TEST(CompactionManagerTest, RateLimitsPerProfile) {
  ManualClock clock(0);
  CompactionManagerOptions options;
  options.synchronous = true;
  options.min_interval_ms = 1000;
  std::atomic<int> runs{0};
  CompactionManager manager(options, &clock,
                            [&](ProfileId, bool) { runs.fetch_add(1); });
  EXPECT_TRUE(manager.MaybeTrigger(1));
  EXPECT_FALSE(manager.MaybeTrigger(1));  // too soon
  EXPECT_TRUE(manager.MaybeTrigger(2));   // different profile OK
  clock.AdvanceMs(1001);
  EXPECT_TRUE(manager.MaybeTrigger(1));
  EXPECT_EQ(runs.load(), 3);
}

TEST(CompactionManagerTest, AsyncExecutesAllTriggers) {
  ManualClock clock(0);
  CompactionManagerOptions options;
  options.num_threads = 2;
  options.min_interval_ms = 0;
  std::atomic<int> runs{0};
  CompactionManager manager(options, &clock,
                            [&](ProfileId, bool) { runs.fetch_add(1); });
  for (ProfileId pid = 1; pid <= 50; ++pid) {
    manager.MaybeTrigger(pid);
  }
  manager.Drain();
  EXPECT_EQ(runs.load(), 50);
}

TEST(CompactionManagerTest, DedupesInFlightProfile) {
  ManualClock clock(0);
  CompactionManagerOptions options;
  options.num_threads = 1;
  options.min_interval_ms = 0;
  std::atomic<int> runs{0};
  std::atomic<bool> block{true};
  CompactionManager manager(options, &clock, [&](ProfileId, bool) {
    while (block.load()) std::this_thread::yield();
    runs.fetch_add(1);
  });
  EXPECT_TRUE(manager.MaybeTrigger(1));
  EXPECT_FALSE(manager.MaybeTrigger(1));  // in flight
  block.store(false);
  manager.Drain();
  EXPECT_EQ(runs.load(), 1);
}

// -------------------------------------------------- CompactionController ---

TEST(CompactionControllerTest, DefaultMatchesLegacyFullVsPartial) {
  // The pre-refactor manager ran a full pass iff the drain queue was
  // shallower than partial_threshold, degraded to partial beyond it, and
  // never skipped (the pool's queue bound was the only drop point). The
  // default policy must reproduce that decision table verbatim.
  DefaultCompactionController policy;
  CompactionPressure p;
  p.partial_threshold = 64;
  p.max_queue = 128;
  p.queue_depth = 0;
  EXPECT_EQ(policy.Classify(p), CompactionKind::kFull);
  p.queue_depth = 63;
  EXPECT_EQ(policy.Classify(p), CompactionKind::kFull);
  p.queue_depth = 64;
  EXPECT_EQ(policy.Classify(p), CompactionKind::kPartial);
  p.queue_depth = 128;  // saturated: still partial, never a skip
  EXPECT_EQ(policy.Classify(p), CompactionKind::kPartial);
  EXPECT_EQ(policy.MinIntervalMs(60'000), 60'000);
}

TEST(CompactionControllerTest, DecayBacksOffNearSaturationAndHalvesInterval) {
  DecayBiasedCompactionController policy;
  CompactionPressure p;
  p.partial_threshold = 64;
  p.max_queue = 1024;
  p.queue_depth = 0;
  EXPECT_EQ(policy.Classify(p), CompactionKind::kFull);
  // Degrades to cheap partial passes at half the default pressure.
  p.queue_depth = 32;
  EXPECT_EQ(policy.Classify(p), CompactionKind::kPartial);
  // A deep per-shard backlog alone is enough to degrade.
  p.queue_depth = 0;
  p.shard_queue_depth = 3;
  EXPECT_EQ(policy.Classify(p), CompactionKind::kPartial);
  // Near saturation (>= 7/8 of max_queue) it backs off entirely.
  p.shard_queue_depth = 0;
  p.queue_depth = 1024 - 1024 / 8;
  EXPECT_EQ(policy.Classify(p), CompactionKind::kSkip);
  // Compacts twice as often: the configured interval is halved.
  EXPECT_EQ(policy.MinIntervalMs(60'000), 30'000);
  EXPECT_EQ(policy.MinIntervalMs(1), 1);
}

TEST(CompactionControllerTest, FactoryResolvesNamesAndRejectsUnknown) {
  auto dflt = MakeCompactionController("default");
  ASSERT_NE(dflt, nullptr);
  EXPECT_STREQ(dflt->name(), "default");
  auto empty = MakeCompactionController("");
  ASSERT_NE(empty, nullptr);
  EXPECT_STREQ(empty->name(), "default");
  auto decay = MakeCompactionController("decay");
  ASSERT_NE(decay, nullptr);
  EXPECT_STREQ(decay->name(), "decay");
  EXPECT_EQ(MakeCompactionController("no-such-policy"), nullptr);
}

TEST(CompactionManagerTest, PolicySwapPreservesDefaultBehavior) {
  // An explicitly injected DefaultCompactionController, the "default"
  // policy-name path, and an unknown name (which falls back to default
  // fail-safe) must all produce the identical run sequence over the same
  // trigger schedule — pinning the refactor against the legacy manager.
  auto run_schedule = [](CompactionManager& manager, ManualClock& clock) {
    std::vector<bool> outcomes;
    for (ProfileId pid = 1; pid <= 8; ++pid) {
      outcomes.push_back(manager.MaybeTrigger(pid));
      outcomes.push_back(manager.MaybeTrigger(pid));  // rate-limited
    }
    clock.AdvanceMs(2000);
    for (ProfileId pid = 1; pid <= 8; ++pid) {
      outcomes.push_back(manager.MaybeTrigger(pid));
    }
    return outcomes;
  };
  CompactionManagerOptions options;
  options.synchronous = true;
  options.min_interval_ms = 1000;

  std::vector<std::pair<ProfileId, bool>> runs_injected;
  ManualClock clock_a(0);
  CompactionManager with_injected(
      options, &clock_a,
      [&](ProfileId pid, bool full) { runs_injected.emplace_back(pid, full); },
      nullptr, std::make_unique<DefaultCompactionController>());
  const auto outcomes_injected = run_schedule(with_injected, clock_a);

  std::vector<std::pair<ProfileId, bool>> runs_named;
  ManualClock clock_b(0);
  CompactionManager with_named(
      options, &clock_b,
      [&](ProfileId pid, bool full) { runs_named.emplace_back(pid, full); });
  const auto outcomes_named = run_schedule(with_named, clock_b);

  CompactionManagerOptions bad = options;
  bad.policy = "typo-policy";
  std::vector<std::pair<ProfileId, bool>> runs_fallback;
  ManualClock clock_c(0);
  CompactionManager with_fallback(
      bad, &clock_c,
      [&](ProfileId pid, bool full) { runs_fallback.emplace_back(pid, full); });
  const auto outcomes_fallback = run_schedule(with_fallback, clock_c);

  EXPECT_EQ(outcomes_injected, outcomes_named);
  EXPECT_EQ(runs_injected, runs_named);
  EXPECT_EQ(outcomes_injected, outcomes_fallback);
  EXPECT_EQ(runs_injected, runs_fallback);
  EXPECT_STREQ(with_fallback.controller().name(), "default");
}

TEST(CompactionManagerTest, QueuePressureDegradesToPartial) {
  ManualClock clock(0);
  CompactionManagerOptions options;
  options.num_threads = 1;
  options.min_interval_ms = 0;
  options.partial_threshold = 1;
  std::atomic<bool> block{true};
  std::atomic<int> full_runs{0};
  std::atomic<int> partial_runs{0};
  CompactionManager manager(options, &clock, [&](ProfileId, bool full) {
    while (block.load()) std::this_thread::yield();
    (full ? full_runs : partial_runs).fetch_add(1);
  });
  // First trigger occupies the single worker; the second queues while the
  // probe still reads depth 0 (full); the third sees depth >= 1 -> partial.
  EXPECT_TRUE(manager.MaybeTrigger(1));
  EXPECT_TRUE(manager.MaybeTrigger(2));
  while (manager.QueueDepth() < 1) std::this_thread::yield();
  EXPECT_TRUE(manager.MaybeTrigger(3));
  block.store(false);
  manager.Drain();
  EXPECT_EQ(full_runs.load() + partial_runs.load(), 3);
  EXPECT_GE(partial_runs.load(), 1);
}

TEST(CompactionManagerTest, DecayPolicySkipsNearSaturation) {
  ManualClock clock(0);
  MetricsRegistry metrics;
  CompactionManagerOptions options;
  options.num_threads = 1;
  options.min_interval_ms = 0;
  options.max_queue = 8;
  options.policy = "decay";
  std::atomic<bool> block{true};
  std::atomic<int> runs{0};
  CompactionManager manager(
      options, &clock,
      [&](ProfileId, bool) {
        while (block.load()) std::this_thread::yield();
        runs.fetch_add(1);
      },
      &metrics);
  EXPECT_STREQ(manager.controller().name(), "decay");
  // Occupy the worker, then pile distinct pids until the decay policy's
  // near-saturation backoff (>= 7/8 of max_queue) starts refusing triggers.
  ASSERT_TRUE(manager.MaybeTrigger(1));
  ProfileId pid = 2;
  int refused = 0;
  for (; pid <= 64 && refused == 0; ++pid) {
    if (!manager.MaybeTrigger(pid)) ++refused;
  }
  EXPECT_GT(refused, 0);
  EXPECT_GT(metrics.GetCounter("compaction.backoff")->Value(), 0);
  // A backed-off profile is not in flight: it can re-trigger after drain.
  block.store(false);
  manager.Drain();
  const ProfileId refused_pid = pid - 1;
  EXPECT_TRUE(manager.MaybeTrigger(refused_pid));
  manager.Drain();
}

TEST(CompactionManagerTest, TriggerMapStaysBoundedUnderDistinctPidFlood) {
  // Regression: last_run_ms used to grow one entry per distinct pid forever.
  // A flood of fresh pids must leave the per-profile rate-limit state capped
  // near (4 * max_queue + 1024) regardless of flood size.
  ManualClock clock(0);
  CompactionManagerOptions options;
  options.synchronous = true;
  options.min_interval_ms = 1'000'000;
  options.max_queue = 64;
  CompactionManager manager(options, &clock, [](ProfileId, bool) {});
  for (ProfileId pid = 1; pid <= 50'000; ++pid) {
    manager.MaybeTrigger(pid);
  }
  const size_t cap = 4 * options.max_queue + 1024;
  EXPECT_LE(manager.RateLimitEntriesForTest(), cap + 16);  // +shard rounding
  EXPECT_GT(manager.RateLimitEntriesForTest(), 0u);
}

TEST(CompactionManagerTest, MultiShardStormIsThreadSafe) {
  // TSan target: concurrent MaybeTrigger floods from many threads, racing
  // Drain calls and SetEnabled flips over the striped drain pool. Asserts
  // only liveness and that nothing runs while disabled-and-drained; the
  // sanitizer asserts the absence of races.
  ManualClock clock(0);
  MetricsRegistry metrics;
  CompactionManagerOptions options;
  options.num_threads = 3;
  options.queue_shards = 8;
  options.min_interval_ms = 0;
  options.max_queue = 256;
  std::atomic<int> runs{0};
  CompactionManager manager(
      options, &clock, [&](ProfileId, bool) { runs.fetch_add(1); }, &metrics);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&manager, &stop, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      while (!stop.load()) {
        manager.MaybeTrigger(rng.Uniform(512) + 1);
      }
    });
  }
  threads.emplace_back([&manager, &stop] {
    while (!stop.load()) {
      manager.SetEnabled(false);
      std::this_thread::yield();
      manager.SetEnabled(true);
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&manager, &stop] {
    while (!stop.load()) {
      manager.Drain();
      std::this_thread::yield();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& thread : threads) thread.join();
  manager.SetEnabled(true);
  manager.Drain();
  EXPECT_GT(runs.load(), 0);
  const int settled = runs.load();
  manager.SetEnabled(false);
  EXPECT_FALSE(manager.MaybeTrigger(9999));
  manager.Drain();
  EXPECT_EQ(runs.load(), settled);
}

}  // namespace
}  // namespace ips
