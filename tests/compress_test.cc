#include "codec/compress.h"

#include <string>

#include <gtest/gtest.h>

#include "common/random.h"

namespace ips {
namespace {

std::string RoundTrip(const std::string& input) {
  std::string compressed, output;
  BlockCompress(input, &compressed);
  Status status = BlockUncompress(compressed, &output);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return output;
}

TEST(CompressTest, EmptyInput) {
  EXPECT_EQ(RoundTrip(""), "");
}

TEST(CompressTest, ShortInput) {
  EXPECT_EQ(RoundTrip("a"), "a");
  EXPECT_EQ(RoundTrip("abc"), "abc");
}

TEST(CompressTest, RepetitiveInputCompressesWell) {
  const std::string input(100'000, 'z');
  std::string compressed;
  BlockCompress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 50);
  std::string output;
  ASSERT_TRUE(BlockUncompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST(CompressTest, StructuredInputCompresses) {
  // Serialized-profile-like data: repeated small records.
  std::string input;
  for (int i = 0; i < 2000; ++i) {
    input += "slot=";
    input += std::to_string(i % 8);
    input += ";type=";
    input += std::to_string(i % 16);
    input += ";count=1;";
  }
  std::string compressed;
  BlockCompress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 2);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(CompressTest, RandomInputRoundTripsWithBoundedExpansion) {
  Rng rng(123);
  std::string input;
  input.reserve(50'000);
  for (int i = 0; i < 50'000; ++i) {
    input.push_back(static_cast<char>(rng.Next() & 0xFF));
  }
  std::string compressed;
  BlockCompress(input, &compressed);
  // Incompressible data must not blow up.
  EXPECT_LT(compressed.size(), input.size() + input.size() / 64 + 32);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(CompressTest, OverlappingCopiesRoundTrip) {
  // "abcabcabc..." triggers overlapping (RLE-like) copies.
  std::string input;
  for (int i = 0; i < 10'000; ++i) input += "abc";
  EXPECT_EQ(RoundTrip(input), input);
}

class CompressSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CompressSizeTest, RoundTripsAtSize) {
  Rng rng(GetParam() + 1);
  std::string input;
  for (size_t i = 0; i < GetParam(); ++i) {
    // Mix of compressible (ASCII digits) and random bytes.
    input.push_back(rng.Bernoulli(0.7)
                        ? static_cast<char>('0' + (i % 10))
                        : static_cast<char>(rng.Next() & 0xFF));
  }
  EXPECT_EQ(RoundTrip(input), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompressSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 17,
                                           63, 64, 65, 255, 256, 1000, 4096,
                                           65535, 65536, 65537, 200'000));

TEST(CompressTest, GetUncompressedLengthMatches) {
  const std::string input(12'345, 'q');
  std::string compressed;
  BlockCompress(input, &compressed);
  auto len = GetUncompressedLength(compressed);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, input.size());
}

TEST(CompressTest, DetectsTruncation) {
  std::string compressed;
  BlockCompress(std::string(1000, 'x') + "unique suffix", &compressed);
  for (size_t cut : {size_t{0}, size_t{1}, size_t{4},
                     compressed.size() / 2, compressed.size() - 1}) {
    std::string output;
    Status status =
        BlockUncompress(std::string_view(compressed).substr(0, cut), &output);
    EXPECT_TRUE(status.IsCorruption()) << "cut=" << cut;
  }
}

TEST(CompressTest, DetectsBitFlips) {
  std::string input = "The profile service stores aggregated user behavior ";
  for (int i = 0; i < 6; ++i) input += input;  // grow with self-similarity
  std::string compressed;
  BlockCompress(input, &compressed);

  Rng rng(7);
  int detected = 0;
  const int kTrials = 50;
  for (int t = 0; t < kTrials; ++t) {
    std::string corrupted = compressed;
    const size_t pos = rng.Uniform(corrupted.size());
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 << rng.Uniform(8)));
    std::string output;
    Status status = BlockUncompress(corrupted, &output);
    // Either the frame fails to parse, or the checksum catches it, or the
    // flip undid itself (same bit) — output must equal input in that case.
    if (!status.ok()) {
      ++detected;
    } else {
      EXPECT_EQ(output, input) << "undetected corruption at byte " << pos;
      ++detected;  // bit flip happened to produce a valid identical frame
    }
  }
  EXPECT_EQ(detected, kTrials);
}

TEST(CompressTest, RejectsCopyBeyondOutput) {
  // Hand-craft a frame: claims 4 bytes, immediately issues a copy with a
  // too-large offset.
  std::string frame;
  frame.push_back(4);                       // varint decompressed length
  frame.append(4, '\0');                    // checksum placeholder
  frame.push_back((2 << 1) | 1);            // copy, len 2
  frame.push_back(9);                       // offset 9 > produced 0
  std::string output;
  EXPECT_TRUE(BlockUncompress(frame, &output).IsCorruption());
}

TEST(CompressTest, RejectsLengthMismatch) {
  std::string compressed;
  BlockCompress("hello world", &compressed);
  // Corrupt the declared length (first varint byte).
  compressed[0] = static_cast<char>(compressed[0] ^ 0x01);
  std::string output;
  EXPECT_FALSE(BlockUncompress(compressed, &output).ok());
}

}  // namespace
}  // namespace ips
