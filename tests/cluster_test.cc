#include "cluster/client.h"
#include "cluster/consistent_hash.h"
#include "cluster/deployment.h"
#include "cluster/discovery.h"
#include "cluster/rpc.h"

#include <map>
#include <optional>
#include <set>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;

// ------------------------------------------------------- ConsistentHash ---

TEST(ConsistentHashTest, EmptyRingReturnsEmpty) {
  ConsistentHashRing ring;
  EXPECT_EQ(ring.Lookup(123), "");
  EXPECT_TRUE(ring.LookupN(123, 3).empty());
}

TEST(ConsistentHashTest, SingleNodeOwnsEverything) {
  ConsistentHashRing ring;
  ring.AddNode("n1");
  for (ProfileId pid = 0; pid < 100; ++pid) {
    EXPECT_EQ(ring.Lookup(pid), "n1");
  }
}

TEST(ConsistentHashTest, LookupIsDeterministic) {
  ConsistentHashRing a, b;
  for (const char* n : {"n1", "n2", "n3"}) {
    a.AddNode(n);
    b.AddNode(n);
  }
  for (ProfileId pid = 0; pid < 1000; ++pid) {
    EXPECT_EQ(a.Lookup(pid), b.Lookup(pid));
  }
}

TEST(ConsistentHashTest, LoadSpreadsAcrossNodes) {
  ConsistentHashRing ring(/*virtual_nodes=*/128);
  for (int i = 0; i < 8; ++i) ring.AddNode("node-" + std::to_string(i));
  std::map<std::string, int> counts;
  Rng rng(5);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[ring.Lookup(rng.Next())];
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [node, count] : counts) {
    // Each node owns roughly 1/8 of keys; allow generous imbalance.
    EXPECT_GT(count, n / 8 / 3) << node;
    EXPECT_LT(count, n / 8 * 3) << node;
  }
}

TEST(ConsistentHashTest, NodeRemovalMovesOnlyItsKeys) {
  ConsistentHashRing ring;
  for (int i = 0; i < 8; ++i) ring.AddNode("node-" + std::to_string(i));
  std::map<ProfileId, std::string> before;
  for (ProfileId pid = 0; pid < 10'000; ++pid) before[pid] = ring.Lookup(pid);
  ring.RemoveNode("node-3");
  int moved = 0;
  for (const auto& [pid, owner] : before) {
    const std::string& now = ring.Lookup(pid);
    if (owner == "node-3") {
      EXPECT_NE(now, "node-3");
    } else {
      if (now != owner) ++moved;
    }
  }
  EXPECT_EQ(moved, 0) << "keys not owned by the removed node must not move";
}

TEST(ConsistentHashTest, LookupNReturnsDistinctSuccessors) {
  ConsistentHashRing ring;
  for (int i = 0; i < 5; ++i) ring.AddNode("node-" + std::to_string(i));
  const auto targets = ring.LookupN(42, 3);
  ASSERT_EQ(targets.size(), 3u);
  std::set<std::string> unique(targets.begin(), targets.end());
  EXPECT_EQ(unique.size(), 3u);
  EXPECT_EQ(targets[0], ring.Lookup(42));
  // Requesting more than the membership returns all members.
  EXPECT_EQ(ring.LookupN(42, 10).size(), 5u);
}

TEST(ConsistentHashTest, SetMembersReplacesView) {
  ConsistentHashRing ring;
  ring.AddNode("old");
  ring.SetMembers({"a", "b"});
  EXPECT_FALSE(ring.HasNode("old"));
  EXPECT_TRUE(ring.HasNode("a"));
  EXPECT_EQ(ring.NodeCount(), 2u);
}

// ------------------------------------------------------------ Discovery ---

TEST(DiscoveryTest, RegisterSnapshotDeregister) {
  ManualClock clock(0);
  DiscoveryService discovery(&clock, /*ttl_ms=*/1000);
  discovery.Register("i1", "region-a", 0);
  discovery.Register("i2", "region-b", 1);
  EXPECT_EQ(discovery.Snapshot().size(), 2u);
  EXPECT_EQ(discovery.Snapshot("region-a").size(), 1u);
  discovery.Deregister("i1");
  EXPECT_EQ(discovery.Snapshot().size(), 1u);
}

TEST(DiscoveryTest, EntriesExpireWithoutHeartbeat) {
  ManualClock clock(0);
  DiscoveryService discovery(&clock, /*ttl_ms=*/1000);
  discovery.Register("i1", "r", 0);
  clock.AdvanceMs(500);
  EXPECT_EQ(discovery.Snapshot().size(), 1u);
  clock.AdvanceMs(600);  // past TTL
  EXPECT_TRUE(discovery.Snapshot().empty());
  // A heartbeat revives within TTL.
  discovery.Register("i2", "r", 0);
  clock.AdvanceMs(900);
  discovery.Heartbeat("i2");
  clock.AdvanceMs(900);
  EXPECT_EQ(discovery.Snapshot().size(), 1u);
}

// ------------------------------------------------------------- Channel ---

TEST(ChannelTest, DeliversCalls) {
  Channel channel(ChannelOptions{});
  int calls = 0;
  Status status = channel.Call(100, 100, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(ChannelTest, PartitionBlocksCalls) {
  Channel channel(ChannelOptions{});
  channel.SetPartitioned(true);
  int calls = 0;
  Status status = channel.Call(0, 0, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(calls, 0);
  channel.SetPartitioned(false);
  EXPECT_TRUE(channel.Call(0, 0, [] { return Status::OK(); }).ok());
}

TEST(ChannelTest, DropProbabilityDropsSomeCalls) {
  ChannelOptions options;
  options.drop_probability = 0.5;
  options.seed = 11;
  Channel channel(options);
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    if (channel.Call(0, 0, [] { return Status::OK(); }).ok()) ++delivered;
  }
  EXPECT_GT(delivered, 50);
  EXPECT_LT(delivered, 150);
  channel.SetDropProbability(0.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(channel.Call(0, 0, [] { return Status::OK(); }).ok());
  }
}

TEST(ChannelTest, LatencySimulationAddsDelay) {
  ChannelOptions options;
  options.base_latency_us = 2000;  // 2 ms each way
  Channel channel(options);
  const int64_t begin = MonotonicNanos();
  channel.Call(0, 0, [] { return Status::OK(); }).ok();
  const int64_t elapsed_us = (MonotonicNanos() - begin) / 1000;
  EXPECT_GE(elapsed_us, 3500);  // ~4 ms round trip, scheduling slop allowed
}

// ----------------------------------------------------------- Deployment ---

DeploymentOptions TwoRegionOptions() {
  DeploymentOptions options;
  options.regions = {{"lf", 2, /*is_primary=*/true},
                     {"hl", 2, /*is_primary=*/false}};
  options.instance.start_background_threads = false;
  options.instance.cache.start_background_threads = false;
  options.instance.compaction.synchronous = true;
  options.instance.isolation_enabled = false;
  options.instance.cache.write_granularity_ms = kMinute;
  options.kv.replication_lag_ms = 100;
  return options;
}

TableSchema ClusterSchema() {
  TableSchema schema = DefaultTableSchema("profiles");
  schema.write_granularity_ms = kMinute;
  return schema;
}

class DeploymentTest : public ::testing::Test {
 protected:
  DeploymentTest()
      : clock_(100 * kDay), deployment_(TwoRegionOptions(), &clock_) {
    EXPECT_TRUE(deployment_.CreateTableEverywhere(ClusterSchema()).ok());
  }

  IpsClientOptions LocalClientOptions(const std::string& region) {
    IpsClientOptions options;
    options.caller = "test";
    options.local_region = region;
    for (const auto& r : deployment_.region_names()) {
      if (r != region) options.failover_regions.push_back(r);
    }
    return options;
  }

  ManualClock clock_;
  Deployment deployment_;
};

TEST_F(DeploymentTest, TopologyIsBuilt) {
  EXPECT_EQ(deployment_.region_names().size(), 2u);
  EXPECT_EQ(deployment_.NodesInRegion("lf").size(), 2u);
  EXPECT_EQ(deployment_.NodesInRegion("hl").size(), 2u);
  EXPECT_EQ(deployment_.discovery().LiveCount(), 4u);
  EXPECT_NE(deployment_.FindNode("lf/ips-0"), nullptr);
  EXPECT_EQ(deployment_.FindNode("nope"), nullptr);
}

TEST_F(DeploymentTest, WriteGoesToAllRegionsReadStaysLocal) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const TimestampMs now = clock_.NowMs();
  ASSERT_TRUE(
      client.AddProfile("profiles", 1, now - kMinute, 1, 1, 42, CountVector{1})
          .ok());
  // Readable from both regions (each got its own copy).
  for (const std::string region : {"lf", "hl"}) {
    IpsClient reader(LocalClientOptions(region), &deployment_);
    auto result = reader.GetProfileTopK("profiles", 1, 1, std::nullopt,
                                        TimeRange::Current(kDay),
                                        SortBy::kActionCount, 0, 10);
    ASSERT_TRUE(result.ok()) << region;
    ASSERT_EQ(result->features.size(), 1u) << region;
    EXPECT_EQ(result->features[0].fid, 42u);
  }
}

TEST_F(DeploymentTest, NodeFailureRetriesOnSuccessor) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const TimestampMs now = clock_.NowMs();
  // Write enough profiles that both lf nodes own some.
  for (ProfileId pid = 1; pid <= 20; ++pid) {
    ASSERT_TRUE(client
                    .AddProfile("profiles", pid, now - kMinute, 1, 1, pid,
                                CountVector{1})
                    .ok());
  }
  // Persist the write-back caches so the downed node's data is reachable
  // from the shared region KV (a crash before flush loses cache-only data —
  // the weak-consistency trade-off the paper accepts).
  for (auto* node : deployment_.NodesInRegion("lf")) {
    node->instance().FlushAll();
  }
  // Kill one lf node; reads must still succeed via the ring successor or
  // failover region.
  deployment_.FindNode("lf/ips-0")->SetDown(true);
  int successes = 0;
  for (ProfileId pid = 1; pid <= 20; ++pid) {
    auto result = client.GetProfileTopK("profiles", pid, 1, std::nullopt,
                                        TimeRange::Current(kDay),
                                        SortBy::kActionCount, 0, 10);
    if (result.ok() && !result->features.empty()) ++successes;
  }
  EXPECT_EQ(successes, 20);
}

TEST_F(DeploymentTest, ClientMultiQueryReassemblesInInputOrder) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const TimestampMs now = clock_.NowMs();
  for (ProfileId pid = 1; pid <= 8; ++pid) {
    ASSERT_TRUE(client
                    .AddProfile("profiles", pid, now - kMinute, 1, 1, pid * 10,
                                CountVector{1})
                    .ok());
  }
  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  spec.k = 10;
  // Out-of-order pids, one duplicate, one unknown.
  const std::vector<ProfileId> pids = {5, 1, 424242, 3, 1};
  auto batch = client.MultiQuery("profiles", pids, spec);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->results.size(), pids.size());
  for (const auto& status : batch->statuses) EXPECT_TRUE(status.ok());
  ASSERT_EQ(batch->results[0].features.size(), 1u);
  EXPECT_EQ(batch->results[0].features[0].fid, 50u);
  ASSERT_EQ(batch->results[1].features.size(), 1u);
  EXPECT_EQ(batch->results[1].features[0].fid, 10u);
  EXPECT_TRUE(batch->results[2].features.empty());  // unknown: empty, not error
  ASSERT_EQ(batch->results[3].features.size(), 1u);
  EXPECT_EQ(batch->results[3].features[0].fid, 30u);
  // The duplicate occurrence gets its own (identical) slot.
  ASSERT_EQ(batch->results[4].features.size(), 1u);
  EXPECT_EQ(batch->results[4].features[0].fid, 10u);
}

TEST_F(DeploymentTest, ClientMultiQuerySendsOneSubBatchPerOwningNode) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const TimestampMs now = clock_.NowMs();
  std::vector<ProfileId> pids;
  for (ProfileId pid = 1; pid <= 32; ++pid) {
    ASSERT_TRUE(client
                    .AddProfile("profiles", pid, now - kMinute, 1, 1, pid,
                                CountVector{1})
                    .ok());
    pids.push_back(pid);
  }
  // Every sub-batch RPC records one server.multi_query_batch sample; the lf
  // region has two nodes, so 32 pids must arrive in at most two sub-batches
  // (exactly one per owning node) instead of 32 point RPCs.
  Histogram* batches =
      deployment_.metrics()->GetHistogram("server.multi_query_batch");
  const int64_t rpcs_before = batches->count();
  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  spec.k = 10;
  auto batch = client.MultiQuery("profiles", pids, spec);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < pids.size(); ++i) {
    ASSERT_TRUE(batch->statuses[i].ok());
    ASSERT_EQ(batch->results[i].features.size(), 1u) << "pid " << pids[i];
  }
  const int64_t rpcs = batches->count() - rpcs_before;
  EXPECT_GE(rpcs, 1);
  EXPECT_LE(rpcs, 2);
  EXPECT_EQ(
      deployment_.metrics()->GetCounter("client.multi_read_errors")->Value(),
      0);
}

TEST_F(DeploymentTest, ClientMultiQuerySurvivesNodeFailure) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const TimestampMs now = clock_.NowMs();
  std::vector<ProfileId> pids;
  for (ProfileId pid = 1; pid <= 20; ++pid) {
    ASSERT_TRUE(client
                    .AddProfile("profiles", pid, now - kMinute, 1, 1, pid,
                                CountVector{1})
                    .ok());
    pids.push_back(pid);
  }
  for (auto* node : deployment_.NodesInRegion("lf")) {
    node->instance().FlushAll();
  }
  deployment_.FindNode("lf/ips-0")->SetDown(true);
  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  spec.k = 10;
  // The downed node's sub-batch regroups onto ring successors / failover
  // regions; every pid still resolves.
  auto batch = client.MultiQuery("profiles", pids, spec);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < pids.size(); ++i) {
    ASSERT_TRUE(batch->statuses[i].ok()) << batch->statuses[i].ToString();
    EXPECT_EQ(batch->results[i].features.size(), 1u) << "pid " << pids[i];
  }
}

TEST_F(DeploymentTest, RegionFailoverServesFromOtherRegion) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const TimestampMs now = clock_.NowMs();
  for (ProfileId pid = 1; pid <= 10; ++pid) {
    ASSERT_TRUE(client
                    .AddProfile("profiles", pid, now - kMinute, 1, 1, pid,
                                CountVector{1})
                    .ok());
  }
  deployment_.FailRegion("lf");
  client.RefreshView();
  int successes = 0;
  for (ProfileId pid = 1; pid <= 10; ++pid) {
    auto result = client.GetProfileTopK("profiles", pid, 1, std::nullopt,
                                        TimeRange::Current(kDay),
                                        SortBy::kActionCount, 0, 10);
    if (result.ok() && !result->features.empty()) ++successes;
  }
  EXPECT_EQ(successes, 10);

  deployment_.RecoverRegion("lf");
  client.RefreshView();
  auto result = client.GetProfileTopK("profiles", 1, 1, std::nullopt,
                                      TimeRange::Current(kDay),
                                      SortBy::kActionCount, 0, 10);
  EXPECT_TRUE(result.ok());
}

TEST_F(DeploymentTest, AllRegionsDownReportsUnavailable) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  deployment_.FailRegion("lf");
  deployment_.FailRegion("hl");
  client.RefreshView();
  auto result = client.GetProfileTopK("profiles", 1, 1, std::nullopt,
                                      TimeRange::Current(kDay),
                                      SortBy::kActionCount, 0, 10);
  EXPECT_TRUE(result.status().IsUnavailable());
  EXPECT_GT(client.errors(), 0);
  EXPECT_GT(client.ErrorRate(), 0.0);
}

TEST_F(DeploymentTest, WriteToleratesSingleRegionFailure) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  deployment_.FailRegion("hl");
  client.RefreshView();
  const TimestampMs now = clock_.NowMs();
  // Weak consistency contract: one region acknowledging suffices.
  EXPECT_TRUE(
      client.AddProfile("profiles", 5, now - kMinute, 1, 1, 1, CountVector{1})
          .ok());
}

TEST_F(DeploymentTest, QuotaRejectionSurfacesWithoutRetryStorm) {
  auto nodes = deployment_.NodesInRegion("lf");
  for (auto* node : nodes) {
    node->instance().quota().SetQuota("test", 0.001);
    // Exhaust the tiny budget.
    node->instance().quota().Check("test").ok();
  }
  IpsClientOptions options = LocalClientOptions("lf");
  options.failover_regions.clear();  // keep it within the throttled region
  IpsClient client(options, &deployment_);
  auto result = client.GetProfileTopK("profiles", 1, 1, std::nullopt,
                                      TimeRange::Current(kDay),
                                      SortBy::kActionCount, 0, 10);
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST_F(DeploymentTest, ColdSecondaryNodeServesStaleDataWithinLag) {
  // The weak-consistency scenario of Section III-G, end to end: a profile
  // is updated on the primary region and flushed to the master KV; a cold
  // node in the secondary region loads from its lagging slave, serving the
  // old value until replication catches up.
  const TimestampMs now = clock_.NowMs();
  auto lf_nodes = deployment_.NodesInRegion("lf");
  auto hl_nodes = deployment_.NodesInRegion("hl");

  // Write v1 to the owning primary node only (e.g. the hl copy of the
  // multi-region write was lost — the failure the paper tolerates), flush,
  // and replicate.
  ASSERT_TRUE(lf_nodes[0]
                  ->instance()
                  .AddProfile("w", "profiles", 501, now - 2 * kMinute, 1, 1,
                              7, CountVector{1})
                  .ok());
  lf_nodes[0]->instance().FlushAll();
  deployment_.kv().CatchUpAll();

  // Write v2 (more counts) to the same node, flush — but do NOT let
  // replication catch up.
  ASSERT_TRUE(lf_nodes[0]
                  ->instance()
                  .AddProfile("w", "profiles", 501, now - kMinute, 1, 1, 7,
                              CountVector{9})
                  .ok());
  lf_nodes[0]->instance().FlushAll();

  // A cold hl node loads from the slave: sees v1 (count 1, not 10).
  auto stale = hl_nodes[0]->instance().GetProfileTopK(
      "r", "profiles", 501, 1, std::nullopt, TimeRange::Current(kDay),
      SortBy::kActionCount, 0, 10);
  ASSERT_TRUE(stale.ok());
  ASSERT_EQ(stale->features.size(), 1u);
  EXPECT_EQ(stale->features[0].counts[0], 1);  // the stale value

  // After replication catches up, convergence follows.
  deployment_.kv().CatchUpAll();
  // A different hl node (still cold) sees the fresh value immediately.
  auto fresh = hl_nodes[1]->instance().GetProfileTopK(
      "r", "profiles", 501, 1, std::nullopt, TimeRange::Current(kDay),
      SortBy::kActionCount, 0, 10);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->features.size(), 1u);
  EXPECT_EQ(fresh->features[0].counts[0], 10);  // 1 + 9 aggregated
}

TEST_F(DeploymentTest, StaleViewCrashedNodeIsMaskedByRetryAndBreaker) {
  // A node crashes *between* discovery refreshes: the client's ring still
  // routes to it. Every read must still succeed via the ring-successor
  // retry, and after a few failures the circuit breaker must take the dead
  // node out of candidate selection entirely (no RPC even attempted).
  IpsClientOptions options = LocalClientOptions("lf");
  options.refresh_interval_ms = 1'000'000'000;  // view stays stale
  IpsClient client(options, &deployment_);
  const TimestampMs now = clock_.NowMs();
  for (ProfileId pid = 1; pid <= 20; ++pid) {
    ASSERT_TRUE(client
                    .AddProfile("profiles", pid, now - kMinute, 1, 1, pid,
                                CountVector{1})
                    .ok());
  }
  for (auto* node : deployment_.NodesInRegion("lf")) {
    node->instance().FlushAll();
  }
  // Crash: down AND deregistered, but the client never refreshes its view.
  deployment_.FindNode("lf/ips-0")->SetDown(true);
  deployment_.discovery().Deregister("lf/ips-0");

  for (int round = 0; round < 5; ++round) {
    for (ProfileId pid = 1; pid <= 20; ++pid) {
      auto result = client.GetProfileTopK("profiles", pid, 1, std::nullopt,
                                          TimeRange::Current(kDay),
                                          SortBy::kActionCount, 0, 10);
      ASSERT_TRUE(result.ok()) << "pid " << pid << ": "
                               << result.status().ToString();
      EXPECT_EQ(result->features.size(), 1u) << "pid " << pid;
    }
  }
  // The dead node's breaker tripped...
  CircuitBreaker* breaker = client.breakers().Get("lf/ips-0");
  EXPECT_GE(breaker->consecutive_failures(),
            client.breakers().options().failure_threshold);
  EXPECT_NE(breaker->state(clock_.NowMs()), CircuitBreaker::State::kClosed);
  // ...so later reads skipped it before the RPC, after earlier reads were
  // saved by budget-granted successor retries.
  EXPECT_GT(
      deployment_.metrics()->GetCounter("client.breaker_skips")->Value(), 0);
  EXPECT_GT(deployment_.metrics()->GetCounter("client.retries")->Value(), 0);
  EXPECT_EQ(deployment_.metrics()->GetCounter("client.read_errors")->Value(),
            0);
}

TEST_F(DeploymentTest, ExpiredDeadlineFailsFastOnEveryApi) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const TimestampMs now = clock_.NowMs();
  ASSERT_TRUE(
      client.AddProfile("profiles", 1, now - kMinute, 1, 1, 1, CountVector{1})
          .ok());
  // A context whose deadline already passed: no RPC is worth sending.
  const CallContext expired = CallContext::WithDeadline(clock_.NowMs());
  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);

  auto read = client.Query("profiles", 1, spec, expired);
  EXPECT_TRUE(read.status().IsDeadlineExceeded());

  const std::vector<ProfileId> batch_pids = {1, 2, 3};
  auto batch = client.MultiQuery("profiles", batch_pids, spec, expired);
  ASSERT_TRUE(batch.ok());
  for (const auto& status : batch->statuses) {
    EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  }

  AddRecord record;
  record.timestamp = now - kMinute;
  record.slot = 1;
  record.type = 1;
  record.fid = 2;
  record.counts = CountVector{1};
  EXPECT_TRUE(client.AddProfilesAs("test", "profiles", 1, {record}, expired)
                  .IsDeadlineExceeded());
  EXPECT_GT(
      deployment_.metrics()->GetCounter("client.deadline_exceeded")->Value(),
      0);
}

TEST_F(DeploymentTest, ChannelEnforcesDeadlineAgainstSimulatedLatency) {
  // A request whose simulated wire time cannot fit in the remaining budget
  // fails with DeadlineExceeded at the channel — without spending the
  // latency first.
  DeploymentOptions options = TwoRegionOptions();
  options.channel.base_latency_us = 5000;  // 5 ms each way
  ManualClock clock(100 * kDay);
  Deployment deployment(options, &clock);
  ASSERT_TRUE(deployment.CreateTableEverywhere(ClusterSchema()).ok());
  IpsClientOptions client_options;
  client_options.caller = "test";
  client_options.local_region = "lf";
  IpsClient client(client_options, &deployment);
  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  // 2 ms of budget against 5 ms of one-way latency: hopeless, fail fast.
  const CallContext tight = CallContext::WithTimeout(clock, 2);
  const int64_t begin = MonotonicNanos();
  auto result = client.Query("profiles", 1, spec, tight);
  const int64_t elapsed_us = (MonotonicNanos() - begin) / 1000;
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  // Fail-fast: nowhere near the 10ms+ a full round trip would have burned
  // across the retry attempts.
  EXPECT_LT(elapsed_us, 8000);
  // An unhurried request on the same deployment still works.
  const TimestampMs now = clock.NowMs();
  ASSERT_TRUE(
      client.AddProfile("profiles", 1, now - kMinute, 1, 1, 1, CountVector{1})
          .ok());
  EXPECT_TRUE(client.Query("profiles", 1, spec).ok());
}

TEST_F(DeploymentTest, KvOutageServesDegradedReadsFromReplica) {
  // Graceful degradation end to end: the master KV fails, and a cold read
  // on a primary-region node is served from the slave replica, flagged
  // degraded instead of failing.
  const TimestampMs now = clock_.NowMs();
  auto lf_nodes = deployment_.NodesInRegion("lf");
  ASSERT_TRUE(lf_nodes[0]
                  ->instance()
                  .AddProfile("w", "profiles", 601, now - kMinute, 1, 1, 7,
                              CountVector{3})
                  .ok());
  lf_nodes[0]->instance().FlushAll();
  deployment_.kv().CatchUpAll();
  deployment_.kv().master_store()->SetDown(true);

  QuerySpec spec;
  spec.slot = 1;
  spec.time_range = TimeRange::Current(kDay);
  auto degraded_read = lf_nodes[1]->instance().Query("r", "profiles", 601, spec);
  ASSERT_TRUE(degraded_read.ok()) << degraded_read.status().ToString();
  EXPECT_TRUE(degraded_read->degraded);
  ASSERT_EQ(degraded_read->features.size(), 1u);
  EXPECT_EQ(degraded_read->features[0].counts[0], 3);
  EXPECT_GT(
      deployment_.metrics()->GetCounter("server.degraded_reads")->Value(), 0);

  // Master recovers: the resident copy revalidates on the next flush and
  // fresh cold reads are clean again.
  deployment_.kv().master_store()->SetDown(false);
  auto clean_read = lf_nodes[0]->instance().Query("r", "profiles", 601, spec);
  ASSERT_TRUE(clean_read.ok());
  EXPECT_FALSE(clean_read->degraded);
}

MultiAddItem MakeWriteItem(ProfileId pid, TimestampMs timestamp,
                           FeatureId fid) {
  MultiAddItem item;
  item.pid = pid;
  AddRecord r;
  r.timestamp = timestamp;
  r.slot = 1;
  r.type = 1;
  r.fid = fid;
  r.counts = CountVector{1};
  item.records.push_back(r);
  return item;
}

TEST_F(DeploymentTest, ClientMultiAddWritesEveryRegionInInputOrder) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const TimestampMs now = clock_.NowMs();
  std::vector<MultiAddItem> items;
  for (ProfileId pid = 1; pid <= 8; ++pid) {
    items.push_back(MakeWriteItem(pid, now - kMinute, pid * 10));
  }
  auto batch = client.MultiAdd("profiles", items);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->statuses.size(), items.size());
  for (const auto& status : batch->statuses) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(batch->ok_items, items.size());
  // Multi-region writing: each region got its own copy, so a local reader
  // in either region resolves every pid.
  for (const std::string region : {"lf", "hl"}) {
    IpsClient reader(LocalClientOptions(region), &deployment_);
    for (ProfileId pid = 1; pid <= 8; ++pid) {
      auto result = reader.GetProfileTopK("profiles", pid, 1, std::nullopt,
                                          TimeRange::Current(kDay),
                                          SortBy::kActionCount, 0, 10);
      ASSERT_TRUE(result.ok()) << region << " pid " << pid;
      ASSERT_EQ(result->features.size(), 1u) << region << " pid " << pid;
      EXPECT_EQ(result->features[0].fid, pid * 10);
    }
  }
  EXPECT_EQ(
      deployment_.metrics()->GetCounter("client.multi_write_errors")->Value(),
      0);
  EXPECT_EQ(deployment_.metrics()
                ->GetCounter("client.write_partial_regions")
                ->Value(),
            0);
}

TEST_F(DeploymentTest, ClientMultiAddSendsOneSubBatchPerOwningNode) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const TimestampMs now = clock_.NowMs();
  std::vector<MultiAddItem> items;
  for (ProfileId pid = 1; pid <= 32; ++pid) {
    items.push_back(MakeWriteItem(pid, now - kMinute, pid));
  }
  // Every MultiAdd RPC records one server.multi_add_batch sample; two nodes
  // per region and two regions bound the fan-out at four sub-batches for 32
  // items — not 64 point RPCs.
  Histogram* batches =
      deployment_.metrics()->GetHistogram("server.multi_add_batch");
  const int64_t rpcs_before = batches->count();
  auto batch = client.MultiAdd("profiles", items);
  ASSERT_TRUE(batch.ok());
  for (const auto& status : batch->statuses) ASSERT_TRUE(status.ok());
  const int64_t rpcs = batches->count() - rpcs_before;
  EXPECT_GE(rpcs, 2);  // at least one sub-batch per region
  EXPECT_LE(rpcs, 4);
}

TEST_F(DeploymentTest, ClientMultiAddSurvivesNodeFailure) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const TimestampMs now = clock_.NowMs();
  deployment_.FindNode("lf/ips-0")->SetDown(true);
  std::vector<MultiAddItem> items;
  for (ProfileId pid = 1; pid <= 20; ++pid) {
    items.push_back(MakeWriteItem(pid, now - kMinute, pid));
  }
  // The downed node's sub-batch regroups onto its lf ring successor (and hl
  // accepts its copies regardless); every item must be acknowledged.
  auto batch = client.MultiAdd("profiles", items);
  ASSERT_TRUE(batch.ok());
  for (const auto& status : batch->statuses) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(batch->ok_items, items.size());
}

TEST_F(DeploymentTest, ClientMultiAddBadItemFailsAloneWithErrorCounter) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const TimestampMs now = clock_.NowMs();
  std::vector<MultiAddItem> items;
  items.push_back(MakeWriteItem(1, now - kMinute, 11));
  items.push_back(MultiAddItem{2, {}});  // no records: rejected per item
  items.push_back(MakeWriteItem(3, now - kMinute, 33));
  auto batch = client.MultiAdd("profiles", items);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_TRUE(batch->statuses[0].ok());
  EXPECT_TRUE(batch->statuses[1].IsInvalidArgument())
      << batch->statuses[1].ToString();
  EXPECT_TRUE(batch->statuses[2].ok());
  EXPECT_EQ(batch->ok_items, 2u);
  EXPECT_EQ(
      deployment_.metrics()->GetCounter("client.multi_write_errors")->Value(),
      1);
}

TEST_F(DeploymentTest, ClientMultiAddExpiredDeadlineFailsFast) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const CallContext expired = CallContext::WithDeadline(clock_.NowMs());
  std::vector<MultiAddItem> items = {
      MakeWriteItem(1, clock_.NowMs() - kMinute, 1)};
  auto batch = client.MultiAdd("profiles", items, expired);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->statuses.size(), 1u);
  EXPECT_TRUE(batch->statuses[0].IsDeadlineExceeded())
      << batch->statuses[0].ToString();
  EXPECT_EQ(batch->ok_items, 0u);
}

TEST_F(DeploymentTest, PartialRegionWriteSurfacesAckAndCounter) {
  // The silent-partial-write fix: a write that lands in only one region
  // still returns OK (weak consistency) but must say so — via the WriteAck
  // out-param and the client.write_partial_regions counter — instead of
  // looking indistinguishable from a fully replicated write.
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  const TimestampMs now = clock_.NowMs();
  AddRecord record;
  record.timestamp = now - kMinute;
  record.slot = 1;
  record.type = 1;
  record.fid = 5;
  record.counts = CountVector{1};

  // Healthy deployment: the ack reports full coverage.
  WriteAck ack;
  ASSERT_TRUE(client
                  .AddProfilesAs("test", "profiles", 1, {record},
                                 CallContext{}, &ack)
                  .ok());
  EXPECT_EQ(ack.regions_ok, 2u);
  EXPECT_EQ(ack.regions_total, 2u);
  EXPECT_TRUE(ack.complete());
  EXPECT_EQ(deployment_.metrics()
                ->GetCounter("client.write_partial_regions")
                ->Value(),
            0);

  // hl down: the write is still acknowledged but the ack exposes the gap.
  deployment_.FailRegion("hl");
  client.RefreshView();
  ASSERT_TRUE(client
                  .AddProfilesAs("test", "profiles", 2, {record},
                                 CallContext{}, &ack)
                  .ok());
  EXPECT_EQ(ack.regions_ok, 1u);
  EXPECT_EQ(ack.regions_total, 2u);
  EXPECT_FALSE(ack.complete());
  EXPECT_EQ(deployment_.metrics()
                ->GetCounter("client.write_partial_regions")
                ->Value(),
            1);
  // The batched path reports the same signal.
  auto batch = client.MultiAdd(
      "profiles", {MakeWriteItem(3, now - kMinute, 5)});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->statuses[0].ok());
  EXPECT_EQ(deployment_.metrics()
                ->GetCounter("client.write_partial_regions")
                ->Value(),
            2);
}

TEST(WritePayloadTest, EstimateTracksEncodedRecords) {
  // The payload-accounting fix: request bytes must scale with the records
  // actually sent, not sit at a fixed per-request constant.
  std::vector<AddRecord> small(1);
  small[0].counts = CountVector{1};
  std::vector<AddRecord> large(64);
  for (auto& r : large) r.counts = CountVector{1, 2, 3, 4};
  const size_t small_bytes = EstimateAddPayloadBytes(small);
  const size_t large_bytes = EstimateAddPayloadBytes(large);
  EXPECT_GT(small_bytes, 0u);
  EXPECT_GT(large_bytes, 32 * small_bytes);
  // Wider count vectors cost more than narrow ones at equal record count.
  std::vector<AddRecord> narrow(8), wide(8);
  for (auto& r : narrow) r.counts = CountVector{1};
  for (auto& r : wide) r.counts = CountVector{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_GT(EstimateAddPayloadBytes(wide), EstimateAddPayloadBytes(narrow));
}

TEST_F(DeploymentTest, StaleViewStopsRoutingToDeregisteredNode) {
  IpsClient client(LocalClientOptions("lf"), &deployment_);
  deployment_.FailRegion("lf");
  // Without refresh the client still holds the stale view: calls fail over.
  const TimestampMs now = clock_.NowMs();
  EXPECT_TRUE(
      client.AddProfile("profiles", 3, now - kMinute, 1, 1, 1, CountVector{1})
          .ok());
  client.RefreshView();
  // After refresh, lf has no members; reads go straight to hl.
  auto result = client.GetProfileTopK("profiles", 3, 1, std::nullopt,
                                      TimeRange::Current(kDay),
                                      SortBy::kActionCount, 0, 10);
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace ips
