#include "core/feature_stat.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace ips {
namespace {

TEST(IndexedFeatureStatsTest, UpsertInsertsSorted) {
  IndexedFeatureStats stats;
  stats.Upsert(30, CountVector{1});
  stats.Upsert(10, CountVector{2});
  stats.Upsert(20, CountVector{3});
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_TRUE(stats.IsSorted());
  EXPECT_EQ(stats.stats()[0].fid, 10u);
  EXPECT_EQ(stats.stats()[1].fid, 20u);
  EXPECT_EQ(stats.stats()[2].fid, 30u);
}

TEST(IndexedFeatureStatsTest, UpsertAggregatesSameFidWithSum) {
  IndexedFeatureStats stats;
  stats.Upsert(5, CountVector{1, 2});
  stats.Upsert(5, CountVector{10, 20}, ReduceFn::kSum);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats.stats()[0].counts[0], 11);
  EXPECT_EQ(stats.stats()[0].counts[1], 22);
}

TEST(IndexedFeatureStatsTest, UpsertAggregatesSameFidWithMax) {
  IndexedFeatureStats stats;
  stats.Upsert(5, CountVector{7, 1});
  stats.Upsert(5, CountVector{3, 9}, ReduceFn::kMax);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats.stats()[0].counts[0], 7);
  EXPECT_EQ(stats.stats()[0].counts[1], 9);
}

TEST(IndexedFeatureStatsTest, FindHitsAndMisses) {
  IndexedFeatureStats stats;
  stats.Upsert(42, CountVector{1});
  EXPECT_NE(stats.Find(42), nullptr);
  EXPECT_EQ(stats.Find(41), nullptr);
  EXPECT_EQ(stats.Find(43), nullptr);
  EXPECT_EQ(stats.Find(42)->counts[0], 1);
}

TEST(IndexedFeatureStatsTest, MergeFromDisjoint) {
  IndexedFeatureStats a, b;
  a.Upsert(1, CountVector{1});
  a.Upsert(3, CountVector{3});
  b.Upsert(2, CountVector{2});
  b.Upsert(4, CountVector{4});
  a.MergeFrom(b, ReduceFn::kSum);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_TRUE(a.IsSorted());
  EXPECT_EQ(a.stats()[1].fid, 2u);
}

TEST(IndexedFeatureStatsTest, MergeFromOverlappingSums) {
  IndexedFeatureStats a, b;
  a.Upsert(1, CountVector{1, 0});
  a.Upsert(2, CountVector{2, 0});
  b.Upsert(2, CountVector{0, 5});
  b.Upsert(3, CountVector{3, 0});
  a.MergeFrom(b, ReduceFn::kSum);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.Find(2)->counts[0], 2);
  EXPECT_EQ(a.Find(2)->counts[1], 5);
}

TEST(IndexedFeatureStatsTest, MergeIntoEmpty) {
  IndexedFeatureStats a, b;
  b.Upsert(7, CountVector{7});
  a.MergeFrom(b, ReduceFn::kSum);
  EXPECT_EQ(a.size(), 1u);
  a.MergeFrom(IndexedFeatureStats(), ReduceFn::kSum);  // no-op
  EXPECT_EQ(a.size(), 1u);
}

TEST(IndexedFeatureStatsTest, RetainFilters) {
  IndexedFeatureStats stats;
  for (FeatureId fid = 0; fid < 10; ++fid) {
    stats.Upsert(fid, CountVector{static_cast<int64_t>(fid)});
  }
  stats.Retain([](const FeatureStat& s) { return s.counts[0] >= 5; });
  EXPECT_EQ(stats.size(), 5u);
  EXPECT_TRUE(stats.IsSorted());
  EXPECT_EQ(stats.stats()[0].fid, 5u);
}

TEST(IndexedFeatureStatsTest, RetainAllAndNone) {
  IndexedFeatureStats stats;
  stats.Upsert(1, CountVector{1});
  stats.Retain([](const FeatureStat&) { return true; });
  EXPECT_EQ(stats.size(), 1u);
  stats.Retain([](const FeatureStat&) { return false; });
  EXPECT_TRUE(stats.empty());
}

// Property: a random interleaving of upserts across two sets, then a merge,
// equals a reference accumulation in a std::map.
class FeatureStatPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FeatureStatPropertyTest, MergeMatchesReferenceModel) {
  Rng rng(GetParam());
  IndexedFeatureStats a, b;
  std::map<FeatureId, int64_t> reference;
  for (int i = 0; i < 500; ++i) {
    const FeatureId fid = rng.Uniform(50);
    const int64_t count = static_cast<int64_t>(rng.Uniform(10)) + 1;
    if (rng.Bernoulli(0.5)) {
      a.Upsert(fid, CountVector{count});
    } else {
      b.Upsert(fid, CountVector{count});
    }
    reference[fid] += count;
  }
  a.MergeFrom(b, ReduceFn::kSum);
  EXPECT_TRUE(a.IsSorted());
  ASSERT_EQ(a.size(), reference.size());
  for (const auto& [fid, total] : reference) {
    const FeatureStat* stat = a.Find(fid);
    ASSERT_NE(stat, nullptr) << fid;
    EXPECT_EQ(stat->counts[0], total) << fid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureStatPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 29, 71));

TEST(FeatureStatTest, ApproximateBytesAccountsEntries) {
  IndexedFeatureStats small, large;
  small.Upsert(1, CountVector{1});
  for (FeatureId fid = 0; fid < 100; ++fid) {
    large.Upsert(fid, CountVector{1, 2, 3, 4});
  }
  EXPECT_GT(large.ApproximateBytes(), small.ApproximateBytes());
  EXPECT_GT(large.ApproximateBytes(), 100 * sizeof(FeatureStat));
}

}  // namespace
}  // namespace ips
