#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/rate_limiter.h"
#include "common/thread_pool.h"

namespace ips {
namespace {

// ---------------------------------------------------------------- Clock ---

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(1000);
  EXPECT_EQ(clock.NowMs(), 1000);
  clock.AdvanceMs(500);
  EXPECT_EQ(clock.NowMs(), 1500);
  clock.SetMs(42);
  EXPECT_EQ(clock.NowMs(), 42);
}

TEST(ClockTest, ManualClockSleepAdvancesInsteadOfBlocking) {
  ManualClock clock(0);
  const int64_t before = MonotonicNanos();
  clock.SleepMs(60'000);  // a real sleep would hang the test
  EXPECT_EQ(clock.NowMs(), 60'000);
  EXPECT_LT(MonotonicNanos() - before, int64_t{1'000'000'000});
}

TEST(ClockTest, SystemClockMovesForward) {
  SystemClock* clock = SystemClock::Instance();
  const TimestampMs a = clock->NowMs();
  clock->SleepMs(2);
  EXPECT_GE(clock->NowMs(), a);
}

// ------------------------------------------------------------------ Rng ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, SkewConcentratesOnHead) {
  const double theta = GetParam();
  ZipfGenerator zipf(10'000, theta);
  Rng rng(13);
  int64_t head_hits = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const uint64_t rank = zipf.Next(rng);
    ASSERT_LT(rank, 10'000u);
    if (rank < 100) ++head_hits;
  }
  // Top 1% of items must dominate under any of these skews.
  const double head_fraction = static_cast<double>(head_hits) / n;
  EXPECT_GT(head_fraction, theta >= 0.99 ? 0.45 : 0.25);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfTest, ::testing::Values(0.8, 0.9, 0.99));

TEST(ScrambleIdTest, IsInjectiveOnSample) {
  std::set<uint64_t> out;
  for (uint64_t i = 0; i < 10'000; ++i) out.insert(ScrambleId(i));
  EXPECT_EQ(out.size(), 10'000u);
}

// ----------------------------------------------------------------- Hash ---

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 1024; ++i) buckets.insert(Mix64(i) & 15);
  EXPECT_EQ(buckets.size(), 16u);  // all 16 shards hit by 1024 sequential ids
}

TEST(HashTest, Fnv1aDiffersForDifferentStrings) {
  EXPECT_NE(Fnv1a("table_a"), Fnv1a("table_b"));
  EXPECT_EQ(Fnv1a("same"), Fnv1a("same"));
}

TEST(HashTest, ChecksumDetectsSingleByteFlip) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t sum = Checksum32(data.data(), data.size());
  data[7] ^= 0x01;
  EXPECT_NE(sum, Checksum32(data.data(), data.size()));
}

// ------------------------------------------------------------ Histogram ---

TEST(HistogramTest, EmptyReportsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, ExactInLinearRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(i % 10);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 9);
  EXPECT_EQ(h.Percentile(1.0), 9);
}

TEST(HistogramTest, PercentileOrderingHolds) {
  Histogram h;
  Rng rng(17);
  for (int i = 0; i < 100'000; ++i) {
    h.Record(static_cast<int64_t>(rng.Exponential(2000.0)));
  }
  const int64_t p50 = h.Percentile(0.50);
  const int64_t p90 = h.Percentile(0.90);
  const int64_t p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // p50 of an exponential with mean 2000 is ~1386; allow bucket error.
  EXPECT_NEAR(static_cast<double>(p50), 1386.0, 160.0);
}

TEST(HistogramTest, BucketBoundsAreConsistent) {
  for (int64_t v : {0, 1, 63, 64, 100, 1000, 12345, 1 << 20, 1 << 30}) {
    const int b = Histogram::BucketFor(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(b - 1)) << v;
    }
  }
}

TEST(HistogramTest, RelativeErrorBounded) {
  for (int64_t v = 64; v < (int64_t{1} << 40); v = v * 3 / 2 + 1) {
    const int64_t upper = Histogram::BucketUpperBound(Histogram::BucketFor(v));
    EXPECT_LE(static_cast<double>(upper - v) / static_cast<double>(v), 0.08)
        << v;
  }
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.max(), 30);
  EXPECT_EQ(a.min(), 10);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.max(), 0);
}

// ---------------------------------------------------------- TokenBucket ---

TEST(TokenBucketTest, AllowsBurstThenRejects) {
  ManualClock clock(0);
  TokenBucket bucket(10.0, 5.0, &clock);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
}

TEST(TokenBucketTest, RefillsWithTime) {
  ManualClock clock(0);
  TokenBucket bucket(10.0, 5.0, &clock);
  for (int i = 0; i < 5; ++i) bucket.TryAcquire();
  EXPECT_FALSE(bucket.TryAcquire());
  clock.AdvanceMs(100);  // 1 token at 10/s
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
}

TEST(TokenBucketTest, NeverExceedsBurst) {
  ManualClock clock(0);
  TokenBucket bucket(1000.0, 3.0, &clock);
  clock.AdvanceMs(60'000);
  int granted = 0;
  while (bucket.TryAcquire()) ++granted;
  EXPECT_EQ(granted, 3);
}

TEST(TokenBucketTest, ReconfigureTakesEffect) {
  ManualClock clock(0);
  TokenBucket bucket(1.0, 1.0, &clock);
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
  bucket.Reconfigure(100.0, 100.0);
  clock.AdvanceMs(1000);
  int granted = 0;
  while (bucket.TryAcquire()) ++granted;
  EXPECT_EQ(granted, 100);
  EXPECT_EQ(bucket.rate_per_sec(), 100.0);
}

TEST(TokenBucketTest, WeightedCosts) {
  ManualClock clock(0);
  TokenBucket bucket(10.0, 10.0, &clock);
  EXPECT_TRUE(bucket.TryAcquire(8.0));
  EXPECT_FALSE(bucket.TryAcquire(4.0));
  EXPECT_TRUE(bucket.TryAcquire(2.0));
}

// ----------------------------------------------------------- ThreadPool ---

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, RejectsWhenQueueFull) {
  ThreadPool pool(1, /*max_queue=*/2);
  std::atomic<bool> release{false};
  // Occupy the single worker.
  ASSERT_TRUE(pool.Submit([&release] {
    while (!release.load()) {
      std::this_thread::yield();
    }
  }));
  // Fill the queue, then overflow.
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (pool.Submit([] {})) ++accepted;
  }
  EXPECT_LE(accepted, 2);
  release.store(true);
  pool.Wait();
}

TEST(ThreadPoolTest, WaitReturnsWhenIdle) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks: must not hang
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

// -------------------------------------------------- StripedThreadPool ---

TEST(StripedThreadPoolTest, RunsAllTasksAcrossShards) {
  StripedThreadPool pool(4, /*num_shards=*/16);
  std::atomic<int> counter{0};
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Submit(i, [&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(StripedThreadPoolTest, LoneTaskOnAnyShardDrainsOnItsOwnWake) {
  // Regression: the steal scan used stride num_workers, so with 4 workers
  // and 16 shards each worker could reach only 8 of the 16 shards. A lone
  // task on a shard outside the woken worker's reachable set made that
  // worker busy-spin (queued_ > 0, PopTask always failing) while the task
  // starved and Wait() hung. One task per shard with a Wait() between
  // submissions forces every shard to drain off a single wake-up.
  StripedThreadPool pool(4, /*num_shards=*/16);
  std::atomic<int> counter{0};
  for (uint64_t shard = 0; shard < 16; ++shard) {
    ASSERT_TRUE(pool.Submit(shard, [&counter] { counter.fetch_add(1); }));
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 16);
}

TEST(StripedThreadPoolTest, SameShardHintKeepsFifoOrder) {
  // One worker, all tasks on one shard: execution must follow submit order.
  StripedThreadPool pool(1, /*num_shards=*/4);
  std::mutex mu;
  std::vector<int> order;
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.Submit(7, [&release] {
    while (!release.load()) std::this_thread::yield();
  }));
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(pool.Submit(7, [&mu, &order, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    }));
  }
  release.store(true);
  pool.Wait();
  ASSERT_EQ(order.size(), 32u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(StripedThreadPoolTest, RejectsWhenTotalQueueFull) {
  StripedThreadPool pool(1, /*num_shards=*/2, /*max_queue=*/2);
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.Submit(0, [&release] {
    while (!release.load()) std::this_thread::yield();
  }));
  int accepted = 0;
  for (uint64_t i = 0; i < 10; ++i) {
    if (pool.Submit(i, [] {})) ++accepted;
  }
  EXPECT_LE(accepted, 2);
  release.store(true);
  pool.Wait();
}

TEST(StripedThreadPoolTest, WorkersStealFromForeignShards) {
  // Two workers; every task lands on one shard, so only one worker owns it
  // as home stripe. The first task parks its worker until a SECOND task is
  // also running — which the other worker can only reach by stealing from
  // the foreign shard. Forces (and counts) a steal even on one core, where
  // a free-running home worker would otherwise drain the queue alone.
  StripedThreadPool pool(2, /*num_shards=*/2);
  std::atomic<int> counter{0};
  std::atomic<int> entered{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit(0, [&counter, &entered] {
      entered.fetch_add(1);
      while (entered.load() < 2) std::this_thread::yield();
      counter.fetch_add(1);
    }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 8);
  EXPECT_GT(pool.StealCount(), 0u);
}

TEST(StripedThreadPoolTest, SingleWorkerNeverSteals) {
  // With one worker every shard is its home stripe, so "steal" must stay 0
  // regardless of how many shards the work spreads over — the structural
  // property the ablation bench's serial row relies on.
  StripedThreadPool pool(1, /*num_shards=*/8);
  std::atomic<int> counter{0};
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit(i * 2654435761u,
                            [&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.StealCount(), 0u);
}

TEST(StripedThreadPoolTest, ShardQueueDepthTracksBacklog) {
  StripedThreadPool pool(1, /*num_shards=*/4);
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.Submit(0, [&release] {
    while (!release.load()) std::this_thread::yield();
  }));
  // Park three more tasks behind the blocker on shard 1's queue.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pool.Submit(1, [] {}));
  }
  EXPECT_GE(pool.ShardQueueDepth(1), 3u);
  EXPECT_GE(pool.QueueDepth(), 3u);
  release.store(true);
  pool.Wait();
  EXPECT_EQ(pool.ShardQueueDepth(1), 0u);
}

TEST(StripedThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  StripedThreadPool pool(3, /*num_shards=*/8);
  pool.Wait();
  SUCCEED();
}

// ------------------------------------------------------- ZipfGenerator ---

using ZipfDeathTest = ::testing::Test;

TEST(ZipfDeathTest, RejectsThetaAtOrAboveOne) {
  // theta >= 1 makes alpha = 1/(1-theta) blow up; construction must abort
  // with a diagnostic instead of silently producing garbage skew.
  EXPECT_DEATH(ZipfGenerator(100, 1.0), "theta");
  EXPECT_DEATH(ZipfGenerator(100, 1.5), "theta");
}

TEST(ZipfDeathTest, RejectsNonPositiveThetaAndEmptyDomain) {
  EXPECT_DEATH(ZipfGenerator(100, 0.0), "theta");
  EXPECT_DEATH(ZipfGenerator(100, -0.5), "theta");
  EXPECT_DEATH(ZipfGenerator(0, 0.5), "n > 0");
}

TEST(ZipfTest, AcceptsOpenIntervalTheta) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const uint64_t v = zipf.Next(rng);
    EXPECT_LT(v, 1000u);
  }
}

}  // namespace
}  // namespace ips
