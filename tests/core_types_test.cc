#include "core/types.h"

#include <utility>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(CountVectorTest, DefaultIsEmpty) {
  CountVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.Total(), 0);
}

TEST(CountVectorTest, InitializerList) {
  CountVector v{1, 2, 3};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 3);
  EXPECT_EQ(v.Total(), 6);
}

TEST(CountVectorTest, AtReturnsZeroOutOfRange) {
  CountVector v{5};
  EXPECT_EQ(v.At(0), 5);
  EXPECT_EQ(v.At(1), 0);
  EXPECT_EQ(v.At(100), 0);
}

TEST(CountVectorTest, ResizeGrowsWithZeros) {
  CountVector v{1};
  v.Resize(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 0);
  EXPECT_EQ(v[2], 0);
}

TEST(CountVectorTest, InlineToHeapTransition) {
  CountVector v;
  v.Resize(CountVector::kInlineCapacity);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int64_t>(i + 1);
  // Cross the inline boundary.
  v.Resize(CountVector::kInlineCapacity + 3);
  EXPECT_EQ(v.size(), CountVector::kInlineCapacity + 3);
  for (size_t i = 0; i < CountVector::kInlineCapacity; ++i) {
    EXPECT_EQ(v[i], static_cast<int64_t>(i + 1));
  }
  EXPECT_EQ(v[CountVector::kInlineCapacity], 0);
}

TEST(CountVectorTest, HeapToInlineShrink) {
  CountVector v(10);
  for (size_t i = 0; i < 10; ++i) v[i] = static_cast<int64_t>(i);
  v.Resize(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[1], 1);
}

TEST(CountVectorTest, CopySemantics) {
  CountVector a{1, 2, 3, 4, 5, 6};  // heap-backed
  CountVector b = a;
  b[0] = 99;
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 99);
  EXPECT_EQ(b.size(), 6u);
}

TEST(CountVectorTest, MoveSemantics) {
  CountVector a{1, 2, 3, 4, 5, 6};
  CountVector b = std::move(a);
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(b[5], 6);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): documented reset

  CountVector c{7, 8};  // inline
  CountVector d = std::move(c);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d[1], 8);
}

TEST(CountVectorTest, AccumulateSum) {
  CountVector a{1, 2};
  CountVector b{10, 20, 30};
  a.AccumulateSum(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], 11);
  EXPECT_EQ(a[1], 22);
  EXPECT_EQ(a[2], 30);
}

TEST(CountVectorTest, AccumulateMax) {
  CountVector a{5, 1};
  CountVector b{3, 9};
  a.AccumulateMax(b);
  EXPECT_EQ(a[0], 5);
  EXPECT_EQ(a[1], 9);
}

TEST(CountVectorTest, AccumulateSumIntoEmpty) {
  CountVector a;
  CountVector b{4, 5};
  a.AccumulateSum(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 4);
}

TEST(CountVectorTest, Equality) {
  EXPECT_EQ(CountVector({1, 2}), CountVector({1, 2}));
  EXPECT_FALSE(CountVector({1, 2}) == CountVector({1, 3}));
  EXPECT_FALSE(CountVector({1, 2}) == CountVector({1, 2, 0}));
  EXPECT_EQ(CountVector(), CountVector());
}

TEST(CountVectorTest, NegativeCountsSupported) {
  // MAX-reduced tables can hold e.g. bid prices; deltas may be negative.
  CountVector a{-5, 10};
  CountVector b{-7, -1};
  a.AccumulateSum(b);
  EXPECT_EQ(a[0], -12);
  EXPECT_EQ(a[1], 9);
}

TEST(CountVectorTest, ApproximateBytesGrowsWithHeap) {
  CountVector inline_v{1, 2};
  CountVector heap_v(32);
  EXPECT_GT(heap_v.ApproximateBytes(), inline_v.ApproximateBytes());
}

class CountVectorSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CountVectorSizeTest, RoundTripThroughResizeAndCopy) {
  const size_t n = GetParam();
  CountVector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<int64_t>(i * i);
  CountVector copy = v;
  ASSERT_EQ(copy.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(copy[i], static_cast<int64_t>(i * i));
  }
  EXPECT_EQ(copy, v);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CountVectorSizeTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 8, 16, 64));

}  // namespace
}  // namespace ips
