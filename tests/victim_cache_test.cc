#include "cache/victim_cache.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/gcache.h"
#include "codec/profile_codec.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "core/profile_data.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;

VictimCacheOptions SmallOptions() {
  VictimCacheOptions options;
  options.shards = 2;
  options.memory_limit_bytes = 64 << 10;
  options.admit_min_frequency = 2;
  options.sketch_aging_window = 0;  // exact counts for deterministic tests
  return options;
}

TEST(VictimCacheTest, SketchCountsAccessesAndGatesAdmission) {
  VictimCache l2(SmallOptions());
  EXPECT_EQ(l2.EstimateFrequency(1), 0u);
  EXPECT_FALSE(l2.WouldAdmit(1));
  l2.RecordAccess(1);
  EXPECT_EQ(l2.EstimateFrequency(1), 1u);
  EXPECT_FALSE(l2.WouldAdmit(1));  // floor is 2
  l2.RecordAccess(1);
  EXPECT_EQ(l2.EstimateFrequency(1), 2u);
  EXPECT_TRUE(l2.WouldAdmit(1));

  // A one-touch scan pid is rejected; the bytes never enter the tier.
  l2.RecordAccess(42);
  EXPECT_FALSE(l2.Put(42, "scan-bytes", false));
  EXPECT_EQ(l2.EntryCount(), 0u);
  EXPECT_EQ(l2.MemoryBytes(), 0u);

  // The hot pid is admitted.
  EXPECT_TRUE(l2.Put(1, "hot-bytes", false));
  EXPECT_EQ(l2.EntryCount(), 1u);
  EXPECT_EQ(l2.MemoryBytes(), 9u);
}

TEST(VictimCacheTest, TakeRemovesAndReportsDegraded) {
  VictimCacheOptions options = SmallOptions();
  options.admit_min_frequency = 0;  // admission not under test here
  VictimCache l2(options);
  ASSERT_TRUE(l2.Put(7, "payload-7", true));
  ASSERT_TRUE(l2.Put(8, "payload-8", false));
  EXPECT_EQ(l2.EntryCount(), 2u);

  std::string bytes;
  bool degraded = false;
  ASSERT_TRUE(l2.Take(7, &bytes, &degraded));
  EXPECT_EQ(bytes, "payload-7");
  EXPECT_TRUE(degraded);  // staleness mark survives the demote/promote trip
  // Exclusive tiers: the promotion removed the bytes.
  EXPECT_FALSE(l2.Take(7, &bytes, &degraded));
  EXPECT_EQ(l2.EntryCount(), 1u);

  ASSERT_TRUE(l2.Take(8, &bytes, &degraded));
  EXPECT_EQ(bytes, "payload-8");
  EXPECT_FALSE(degraded);
  EXPECT_EQ(l2.MemoryBytes(), 0u);
}

TEST(VictimCacheTest, BytesAccountingThroughReplaceEraseAndEvict) {
  VictimCacheOptions options = SmallOptions();
  options.shards = 1;
  options.memory_limit_bytes = 64;  // tiny: forces LRU eviction
  options.admit_min_frequency = 0;
  VictimCache l2(options);

  ASSERT_TRUE(l2.Put(1, std::string(20, 'a'), false));
  ASSERT_TRUE(l2.Put(2, std::string(20, 'b'), false));
  EXPECT_EQ(l2.MemoryBytes(), 40u);

  // Replacement accounts the delta, not a duplicate.
  ASSERT_TRUE(l2.Put(1, std::string(30, 'A'), false));
  EXPECT_EQ(l2.MemoryBytes(), 50u);
  EXPECT_EQ(l2.EntryCount(), 2u);

  // A third entry exceeds the 64-byte budget: the LRU tail (pid 2 — pid 1
  // was renewed above) ages out.
  ASSERT_TRUE(l2.Put(3, std::string(30, 'c'), false));
  EXPECT_EQ(l2.EntryCount(), 2u);
  std::string bytes;
  bool degraded = false;
  EXPECT_FALSE(l2.Take(2, &bytes, &degraded));
  EXPECT_TRUE(l2.Take(1, &bytes, &degraded));
  EXPECT_EQ(bytes.size(), 30u);

  l2.Erase(3);
  EXPECT_EQ(l2.EntryCount(), 0u);
  EXPECT_EQ(l2.MemoryBytes(), 0u);

  // Oversized entries are rejected outright.
  EXPECT_FALSE(l2.Put(9, std::string(100, 'x'), false));
}

TEST(VictimCacheTest, SketchAgingHalvesEstimates) {
  VictimCacheOptions options = SmallOptions();
  options.sketch_aging_window = 8;
  VictimCache l2(options);
  for (int i = 0; i < 7; ++i) l2.RecordAccess(5);
  EXPECT_EQ(l2.EstimateFrequency(5), 7u);
  l2.RecordAccess(5);  // 8th access triggers the aging pass
  EXPECT_EQ(l2.EstimateFrequency(5), 4u);  // 8 halved
}

TEST(VictimCacheTest, ConcurrentHammerStaysConsistent) {
  VictimCacheOptions options;
  options.shards = 4;
  options.memory_limit_bytes = 32 << 10;
  options.admit_min_frequency = 1;
  options.sketch_aging_window = 1024;
  VictimCache l2(options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<int> takes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::string bytes;
      bool degraded = false;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const ProfileId pid = static_cast<ProfileId>((t * 7 + i) % 64);
        l2.RecordAccess(pid);
        switch (i % 3) {
          case 0:
            l2.Put(pid, std::string(16 + pid % 32, 'p'), (pid % 2) == 0);
            break;
          case 1:
            if (l2.Take(pid, &bytes, &degraded)) {
              takes.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          default:
            l2.Erase(pid);
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(takes.load(), 0);
  // Post-hammer invariant: global accounting equals the per-shard truth
  // (drain everything and both must hit zero together).
  std::string bytes;
  bool degraded = false;
  for (ProfileId pid = 0; pid < 64; ++pid) l2.Take(pid, &bytes, &degraded);
  EXPECT_EQ(l2.EntryCount(), 0u);
  EXPECT_EQ(l2.MemoryBytes(), 0u);
}

// --- GCache integration: demote on eviction, promote on miss -------------

GCacheOptions TieredCacheOptions() {
  GCacheOptions options;
  options.start_background_threads = false;
  options.lru_shards = 1;  // deterministic eviction ordering
  options.dirty_shards = 2;
  options.memory_limit_bytes = 4 << 10;
  options.write_granularity_ms = kMinute;
  return options;
}

VictimEncodeFn CodecEncode() {
  return [](const ProfileData& profile, std::string* out) {
    EncodeProfile(profile, out);
  };
}

VictimDecodeFn CodecDecode() {
  return [](std::string_view bytes, ProfileData* profile) {
    return DecodeProfile(bytes, profile);
  };
}

TEST(VictimCacheTest, EvictionDemotesAndMissPromotesWithoutStoreLoad) {
  // Count loads that reach the "store" — a promotion must not.
  std::atomic<int> store_loads{0};
  GCache cache(
      TieredCacheOptions(), SystemClock::Instance(),
      [](ProfileId, const ProfileData&) { return Status::OK(); },
      [&](ProfileId, bool*) -> Result<ProfileData> {
        store_loads.fetch_add(1, std::memory_order_relaxed);
        return Status::NotFound("not persisted");
      });
  VictimCacheOptions l2_options;
  l2_options.admit_min_frequency = 2;
  l2_options.sketch_aging_window = 0;
  VictimCache l2(l2_options);
  cache.set_victim_cache(&l2, CodecEncode(), CodecDecode());

  // Touch pid 1 enough that the sketch clears the admission floor, with a
  // payload big enough to exceed the cache budget on its own.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(cache
                    .WithProfileMutable(1,
                                        [&](ProfileData& profile) {
                                          for (int i = 0; i < 120; ++i) {
                                            profile
                                                .Add(kMinute * (i + 1), 1, 1,
                                                     static_cast<FeatureId>(
                                                         i + 1),
                                                     CountVector{1, 2, 3})
                                                .ok();
                                          }
                                        })
                    .ok());
  }
  ASSERT_GT(cache.MemoryBytes(), cache.options().memory_limit_bytes);
  ASSERT_GT(cache.SwapOnce(), 0u);
  EXPECT_EQ(cache.EntryCount(), 0u);
  EXPECT_EQ(l2.EntryCount(), 1u);  // demoted, not dropped
  EXPECT_GT(l2.MemoryBytes(), 0u);
  // Demoted bytes are compressed-encoded: far smaller than the resident
  // profile was.
  EXPECT_LT(l2.MemoryBytes(), 8u << 10);

  // The next read promotes from L2: intact contents, zero store loads.
  const int loads_before = store_loads.load();
  int64_t feature_count = 0;
  bool hit = true;
  ASSERT_TRUE(cache
                  .WithProfile(1,
                               [&](const ProfileData& profile) {
                                 for (const auto& slice : profile.slices()) {
                                   const auto* slot = slice.FindSlot(1);
                                   if (slot == nullptr) continue;
                                   feature_count += static_cast<int64_t>(
                                       slot->TotalFeatures());
                                 }
                               },
                               &hit)
                  .ok());
  EXPECT_FALSE(hit);  // L1 miss (promotion), but...
  EXPECT_EQ(store_loads.load(), loads_before);  // ...no storage round trip
  EXPECT_EQ(feature_count, 120);
  EXPECT_EQ(l2.EntryCount(), 0u);  // exclusive: promotion emptied the tier
  EXPECT_EQ(cache.EntryCount(), 1u);
}

TEST(VictimCacheTest, DegradedFlagSurvivesDemoteAndPromote) {
  // Loader serves pid 5 degraded (fallback replica). After eviction demotes
  // it and a miss promotes it back, readers must still see the degraded
  // mark — the tier must not launder staleness.
  ProfileData seeded(kMinute);
  for (int i = 0; i < 120; ++i) {
    seeded.Add(kMinute * (i + 1), 1, 1, static_cast<FeatureId>(i + 1),
               CountVector{7})
        .ok();
  }
  GCacheOptions options = TieredCacheOptions();
  GCache cache(
      options, SystemClock::Instance(),
      [](ProfileId, const ProfileData&) { return Status::OK(); },
      [&](ProfileId, bool* out_degraded) -> Result<ProfileData> {
        *out_degraded = true;
        return seeded;
      });
  VictimCacheOptions l2_options;
  l2_options.admit_min_frequency = 1;
  VictimCache l2(l2_options);
  cache.set_victim_cache(&l2, CodecEncode(), CodecDecode());

  bool degraded = false;
  ASSERT_TRUE(
      cache.WithProfile(5, [](const ProfileData&) {}, nullptr, &degraded)
          .ok());
  ASSERT_TRUE(degraded);
  // Evict: the entry is CLEAN (never written), so no flush happens and the
  // degraded mark must ride into the tier.
  ASSERT_GT(cache.SwapOnce(), 0u);
  ASSERT_EQ(cache.EntryCount(), 0u);
  ASSERT_EQ(l2.EntryCount(), 1u);

  degraded = false;
  ASSERT_TRUE(
      cache.WithProfile(5, [](const ProfileData&) {}, nullptr, &degraded)
          .ok());
  EXPECT_TRUE(degraded);  // promoted copy still marked possibly-stale
}

TEST(VictimCacheTest, InvalidateErasesBothTiers) {
  GCache cache(
      TieredCacheOptions(), SystemClock::Instance(),
      [](ProfileId, const ProfileData&) { return Status::OK(); },
      [](ProfileId, bool*) -> Result<ProfileData> {
        return Status::NotFound("no");
      });
  VictimCacheOptions l2_options;
  l2_options.admit_min_frequency = 0;
  VictimCache l2(l2_options);
  cache.set_victim_cache(&l2, CodecEncode(), CodecDecode());

  // Plant demoted bytes directly, as if an earlier eviction left them.
  ASSERT_TRUE(l2.Put(3, "stale-demoted-bytes", false));
  ASSERT_TRUE(cache.Invalidate(3).ok());
  EXPECT_EQ(l2.EntryCount(), 0u);  // the handover cleared the L2 copy too
}

TEST(VictimCacheTest, CorruptDemotedBytesFallThroughToLoader) {
  ProfileData seeded(kMinute);
  seeded.Add(kMinute, 1, 1, 9, CountVector{5}).ok();
  std::atomic<int> store_loads{0};
  GCache cache(
      TieredCacheOptions(), SystemClock::Instance(),
      [](ProfileId, const ProfileData&) { return Status::OK(); },
      [&](ProfileId, bool*) -> Result<ProfileData> {
        store_loads.fetch_add(1, std::memory_order_relaxed);
        return seeded;
      });
  VictimCacheOptions l2_options;
  l2_options.admit_min_frequency = 0;
  VictimCache l2(l2_options);
  cache.set_victim_cache(&l2, CodecEncode(), CodecDecode());

  ASSERT_TRUE(l2.Put(9, "not a valid encoded profile", false));
  bool hit = true;
  ASSERT_TRUE(cache.WithProfile(9, [](const ProfileData&) {}, &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(store_loads.load(), 1);  // decode failed -> authoritative load
  EXPECT_EQ(l2.EntryCount(), 0u);    // corrupt bytes were dropped, not kept
}

}  // namespace
}  // namespace ips
