// Tests for request tracing: span mechanics, the TraceCollector, and the
// end-to-end attribution path through client -> channel -> instance ->
// cache -> persister -> kv store.
#include "common/trace.h"
#include "common/trace_collector.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/client.h"
#include "cluster/deployment.h"
#include "common/clock.h"
#include "common/config.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;
constexpr int64_t kDay = kMillisPerDay;

// ------------------------------------------------------- span mechanics ---

TEST(TraceTest, SpansNestViaThreadLocalContext) {
  Trace trace(/*trace_id=*/1, /*start_ms=*/0);
  {
    TraceInstallScope install(TraceCollector::ContextFor(&trace));
    ScopedSpan outer("client.query");
    EXPECT_TRUE(outer.active());
    {
      ScopedSpan inner("cache.lookup");
      EXPECT_TRUE(inner.active());
    }
    ScopedSpan sibling("feature.compute");
  }
  const std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "client.query");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_STREQ(spans[1].name, "cache.lookup");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_STREQ(spans[2].name, "feature.compute");
  EXPECT_EQ(spans[2].parent, 0);
  for (const TraceSpan& span : spans) {
    EXPECT_GT(span.end_ns, 0);
    EXPECT_GE(span.end_ns, span.start_ns);
  }
  EXPECT_GT(trace.DurationNs(), 0);
  EXPECT_GE(trace.StageNs("client.query"),
            trace.StageNs("cache.lookup") + trace.StageNs("feature.compute"));
  EXPECT_EQ(trace.StageNs("kv.load"), 0);
}

TEST(TraceTest, InstallScopeRestoresPreviousContext) {
  Trace outer_trace(1, 0);
  Trace inner_trace(2, 0);
  EXPECT_FALSE(CurrentTrace().active());
  {
    TraceInstallScope outer(TraceCollector::ContextFor(&outer_trace));
    EXPECT_EQ(CurrentTrace().trace, &outer_trace);
    {
      TraceInstallScope inner(TraceCollector::ContextFor(&inner_trace));
      EXPECT_EQ(CurrentTrace().trace, &inner_trace);
    }
    EXPECT_EQ(CurrentTrace().trace, &outer_trace);
    {
      // An inactive context must NOT sever the installed trace: inner layers
      // receive default CallContexts all the time.
      TraceInstallScope noop{TraceContext{}};
      EXPECT_EQ(CurrentTrace().trace, &outer_trace);
    }
  }
  EXPECT_FALSE(CurrentTrace().active());
}

TEST(TraceTest, NoInstalledTraceMeansNoAllocations) {
  const int64_t before = Trace::Allocations();
  for (int i = 0; i < 100; ++i) {
    ScopedSpan span("cache.lookup");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Trace::Allocations(), before);
}

TEST(TraceTest, ConcurrentSpanAppendsAreSafe) {
  Trace trace(1, 0);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&trace] {
      TraceInstallScope install(TraceCollector::ContextFor(&trace));
      for (int i = 0; i < 50; ++i) {
        ScopedSpan span("rpc.transfer");
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(trace.Spans().size(), 200u);
}

// ------------------------------------------------------- TraceCollector ---

TEST(TraceCollectorTest, SamplesOneInEveryN) {
  ManualClock clock(0);
  MetricsRegistry metrics;
  TraceCollectorOptions options;
  options.sample_every_n = 3;
  TraceCollector collector(options, &clock, &metrics);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    if (collector.MaybeStartTrace() != nullptr) ++sampled;
  }
  EXPECT_EQ(sampled, 3);
  EXPECT_EQ(metrics.GetCounter("trace.sampled")->Value(), 3);
}

TEST(TraceCollectorTest, SamplingOffNeverStartsAndNeverAllocates) {
  ManualClock clock(0);
  MetricsRegistry metrics;
  TraceCollector collector(TraceCollectorOptions{}, &clock, &metrics);
  const int64_t before = Trace::Allocations();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(collector.MaybeStartTrace(), nullptr);
  }
  EXPECT_EQ(Trace::Allocations(), before);
  EXPECT_EQ(metrics.GetCounter("trace.sampled")->Value(), 0);
}

TEST(TraceCollectorTest, RingEvictsOldestAndSlowLogKeepsWorst) {
  ManualClock clock(0);
  MetricsRegistry metrics;
  TraceCollectorOptions options;
  options.sample_every_n = 1;
  options.ring_capacity = 2;
  options.slow_log_capacity = 2;
  TraceCollector collector(options, &clock, &metrics);

  // Three traces with clearly increasing durations (sleep only oversleeps,
  // so the ordering is robust).
  const int sleep_ms[] = {1, 8, 16};
  std::vector<uint64_t> ids;
  for (int ms : sleep_ms) {
    auto trace = collector.MaybeStartTrace();
    ASSERT_NE(trace, nullptr);
    ids.push_back(trace->trace_id());
    {
      TraceInstallScope install(TraceCollector::ContextFor(trace.get()));
      ScopedSpan span("server.query");
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
    collector.Finish(std::move(trace));
  }

  EXPECT_EQ(collector.RetainedCount(), 2u);
  EXPECT_EQ(metrics.GetCounter("trace.ring_evicted")->Value(), 1);
  EXPECT_EQ(metrics.GetGauge("trace.ring_size")->Value(), 2);
  EXPECT_EQ(metrics.GetCounter("trace.finished")->Value(), 3);

  const std::vector<SlowQueryEntry> slow = collector.SlowQueries();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].trace_id, ids[2]);  // 16 ms
  EXPECT_EQ(slow[1].trace_id, ids[1]);  // 8 ms
  EXPECT_GT(slow[0].duration_us, slow[1].duration_us);
  ASSERT_FALSE(slow[0].stages.empty());
  EXPECT_EQ(slow[0].stages[0].first, "server.query");

  // The aggregate histogram saw all three traces.
  EXPECT_EQ(metrics.GetHistogram("trace.stage.server.query")->count(), 3);
  const std::string report = collector.SlowQueryReport();
  EXPECT_NE(report.find("server.query="), std::string::npos);
}

// ------------------------------------------------- end-to-end attribution ---

DeploymentOptions TracedClusterOptions() {
  DeploymentOptions options;
  options.regions = {{"lf", 2, /*is_primary=*/true}};
  options.instance.start_background_threads = false;
  options.instance.cache.start_background_threads = false;
  options.instance.compaction.synchronous = true;
  options.instance.isolation_enabled = false;
  options.instance.cache.write_granularity_ms = kMinute;
  return options;
}

class TraceE2eTest : public ::testing::Test {
 protected:
  TraceE2eTest()
      : clock_(100 * kDay), deployment_(TracedClusterOptions(), &clock_) {
    TableSchema schema = DefaultTableSchema("profiles");
    schema.write_granularity_ms = kMinute;
    EXPECT_TRUE(deployment_.CreateTableEverywhere(schema).ok());
    IpsClientOptions client_options;
    client_options.caller = "trace-test";
    client_options.local_region = "lf";
    client_ = std::make_unique<IpsClient>(client_options, &deployment_);
  }

  QuerySpec Spec() const {
    QuerySpec spec;
    spec.slot = 1;
    spec.time_range = TimeRange::Current(kDay);
    spec.sort_by = SortBy::kActionCount;
    spec.k = 10;
    return spec;
  }

  void WriteProfile(ProfileId pid) {
    ASSERT_TRUE(client_
                    ->AddProfile("profiles", pid, clock_.NowMs() - kMinute, 1,
                                 1, 42, CountVector{1})
                    .ok());
  }

  static std::vector<std::string> SpanNames(const Trace& trace) {
    std::vector<std::string> names;
    for (const TraceSpan& span : trace.Spans()) names.push_back(span.name);
    return names;
  }

  static size_t CountName(const std::vector<std::string>& names,
                          const std::string& want) {
    return static_cast<size_t>(
        std::count(names.begin(), names.end(), want));
  }

  ManualClock clock_;
  Deployment deployment_;
  std::unique_ptr<IpsClient> client_;
};

TEST_F(TraceE2eTest, QueryRecordsHitAndMissStages) {
  WriteProfile(7);

  // First read misses the cache (write-path cache and read replicas differ
  // only after the first load), second read hits.
  ManualClock collector_clock(0);
  TraceCollectorOptions options;
  options.sample_every_n = 1;
  TraceCollector collector(options, &collector_clock,
                           deployment_.metrics());

  auto miss_trace = collector.MaybeStartTrace();
  ASSERT_NE(miss_trace, nullptr);
  CallContext miss_ctx;
  miss_ctx.trace = TraceCollector::ContextFor(miss_trace.get());
  const int64_t miss_before = deployment_.metrics()
                                  ->GetCounter("cache.hit")
                                  ->Value();
  ASSERT_TRUE(client_->Query("profiles", 7, Spec(), miss_ctx).ok());
  const bool first_was_hit = deployment_.metrics()
                                 ->GetCounter("cache.hit")
                                 ->Value() > miss_before;

  auto hit_trace = collector.MaybeStartTrace();
  ASSERT_NE(hit_trace, nullptr);
  CallContext hit_ctx;
  hit_ctx.trace = TraceCollector::ContextFor(hit_trace.get());
  ASSERT_TRUE(client_->Query("profiles", 7, Spec(), hit_ctx).ok());

  const std::vector<std::string> miss_names = SpanNames(*miss_trace);
  const std::vector<std::string> hit_names = SpanNames(*hit_trace);

  for (const char* stage : {"client.query", "rpc.transfer", "server.query",
                            "server.queue", "cache.lookup",
                            "feature.compute"}) {
    EXPECT_GE(CountName(hit_names, stage), 1u) << stage;
    EXPECT_GE(CountName(miss_names, stage), 1u) << stage;
  }
  EXPECT_EQ(CountName(hit_names, "rpc.transfer"), 2u);  // request + response
  if (!first_was_hit) {
    EXPECT_GE(CountName(miss_names, "kv.load"), 1u);
    EXPECT_GE(miss_trace->StageNs("kv.load"), 0);
  }
  // The served-from-memory path never touches the store.
  EXPECT_EQ(CountName(hit_names, "kv.load"), 0u);

  // Stage times are consistent: each disjoint stage fits inside the
  // end-to-end duration.
  const int64_t total = hit_trace->DurationNs();
  EXPECT_GT(total, 0);
  for (const char* stage : {"rpc.transfer", "server.queue", "cache.lookup",
                            "feature.compute"}) {
    EXPECT_LE(hit_trace->StageNs(stage), total) << stage;
  }

  collector.Finish(std::move(miss_trace));
  collector.Finish(std::move(hit_trace));
  EXPECT_EQ(collector.RetainedCount(), 2u);
  EXPECT_GE(
      deployment_.metrics()->GetHistogram("trace.stage.client.query")->count(),
      2);
}

TEST_F(TraceE2eTest, MultiQueryScatterGatherSpansNestUnderOneRoot) {
  std::vector<ProfileId> pids;
  for (ProfileId pid = 100; pid < 132; ++pid) {
    WriteProfile(pid);
    pids.push_back(pid);
  }

  Trace trace(/*trace_id=*/99, clock_.NowMs());
  CallContext ctx;
  ctx.trace = TraceCollector::ContextFor(&trace);
  auto result = client_->MultiQuery(
      "profiles", std::span<const ProfileId>(pids.data(), pids.size()),
      Spec(), ctx);
  ASSERT_TRUE(result.ok());

  const std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_FALSE(spans.empty());

  // Exactly one root, and it is the client-side scatter-gather umbrella.
  size_t roots = 0;
  for (const TraceSpan& span : spans) {
    if (span.parent == kNoSpan) {
      ++roots;
      EXPECT_STREQ(span.name, "client.multi_query");
    }
  }
  EXPECT_EQ(roots, 1u);

  // Every parent reference resolves, and every child's interval is
  // contained in its parent's (spans close strictly after their children).
  for (const TraceSpan& span : spans) {
    if (span.parent == kNoSpan) continue;
    ASSERT_GE(span.parent, 0);
    ASSERT_LT(static_cast<size_t>(span.parent), spans.size());
    const TraceSpan& parent = spans[static_cast<size_t>(span.parent)];
    EXPECT_GE(span.start_ns, parent.start_ns);
    EXPECT_LE(span.end_ns, parent.end_ns);
  }

  // 32 pids over a 2-node ring: all but ~2^-31 runs scatter to both nodes,
  // giving at least two RPCs = four transfer legs recorded concurrently.
  const std::vector<std::string> names = SpanNames(trace);
  EXPECT_GE(CountName(names, "rpc.transfer"), 4u);
  EXPECT_GE(CountName(names, "server.query"), 2u);
}

TEST_F(TraceE2eTest, SamplingDecisionIsHonoredEndToEnd) {
  WriteProfile(11);
  ASSERT_TRUE(client_->Query("profiles", 11, Spec()).ok());  // warm cache

  ManualClock collector_clock(0);
  TraceCollectorOptions options;
  options.sample_every_n = 2;
  TraceCollector collector(options, &collector_clock,
                           deployment_.metrics());

  int traced = 0;
  for (int i = 0; i < 10; ++i) {
    auto trace = collector.MaybeStartTrace();
    CallContext ctx;
    ctx.trace = TraceCollector::ContextFor(trace.get());
    if (trace != nullptr) {
      ++traced;
    } else {
      EXPECT_FALSE(ctx.trace.active());
    }
    const int64_t before = Trace::Allocations();
    ASSERT_TRUE(client_->Query("profiles", 11, Spec(), ctx).ok());
    if (trace == nullptr) {
      // Unsampled requests must not create spans anywhere in the stack.
      EXPECT_EQ(Trace::Allocations(), before);
    } else {
      EXPECT_FALSE(trace->Spans().empty());
    }
    collector.Finish(std::move(trace));
  }
  EXPECT_EQ(traced, 5);
  EXPECT_EQ(deployment_.metrics()->GetCounter("trace.finished")->Value(), 5);
  EXPECT_EQ(collector.RetainedCount(), 5u);
}

TEST_F(TraceE2eTest, TracingDisabledAddsZeroAllocationsOnHotPath) {
  WriteProfile(21);
  ASSERT_TRUE(client_->Query("profiles", 21, Spec()).ok());  // warm cache

  const int64_t before = Trace::Allocations();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client_->Query("profiles", 21, Spec()).ok());
  }
  EXPECT_EQ(Trace::Allocations(), before);
}

TEST_F(TraceE2eTest, ExportsAreWellFormedJson) {
  WriteProfile(31);

  ManualClock collector_clock(0);
  TraceCollectorOptions options;
  options.sample_every_n = 1;
  TraceCollector collector(options, &collector_clock,
                           deployment_.metrics());
  for (int i = 0; i < 3; ++i) {
    auto trace = collector.MaybeStartTrace();
    ASSERT_NE(trace, nullptr);
    CallContext ctx;
    ctx.trace = TraceCollector::ContextFor(trace.get());
    ASSERT_TRUE(client_->Query("profiles", 31, Spec(), ctx).ok());
    collector.Finish(std::move(trace));
  }

  // Chrome-trace export: one JSON document with a traceEvents array of
  // complete ("X") events.
  const std::string chrome = collector.ExportChromeTrace();
  Result<ConfigValue> chrome_doc = ParseConfig(chrome);
  ASSERT_TRUE(chrome_doc.ok()) << chrome_doc.status().ToString();
  const ConfigValue& events = chrome_doc->Get("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 0u);
  for (const ConfigValue& event : events.items()) {
    EXPECT_TRUE(event.is_object());
    EXPECT_EQ(event.Get("ph").AsString(), "X");
    EXPECT_TRUE(event.Get("name").is_string());
    EXPECT_TRUE(event.Get("ts").is_number());
    EXPECT_TRUE(event.Get("dur").is_number());
  }

  // JSONL export: every line parses on its own.
  const std::string jsonl = collector.ExportJsonl();
  size_t lines = 0;
  size_t pos = 0;
  while (pos < jsonl.size()) {
    const size_t eol = jsonl.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = jsonl.substr(pos, eol - pos);
    Result<ConfigValue> doc = ParseConfig(line);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_TRUE(doc->Get("spans").is_array());
    EXPECT_TRUE(doc->Get("trace_id").is_number());
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, 3u);
}

}  // namespace
}  // namespace ips
