#include "codec/profile_codec.h"

#include "codec/compress.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"

namespace ips {
namespace {

constexpr int64_t kMinute = kMillisPerMinute;

ProfileData RandomProfile(uint64_t seed, int writes) {
  Rng rng(seed);
  ProfileData profile(kMinute);
  for (int i = 0; i < writes; ++i) {
    CountVector counts(1 + rng.Uniform(6));
    for (size_t j = 0; j < counts.size(); ++j) {
      counts[j] = static_cast<int64_t>(rng.Uniform(100));
    }
    if (counts.Total() == 0) counts[0] = 1;
    EXPECT_TRUE(profile
                    .Add(static_cast<TimestampMs>(
                             rng.Uniform(10 * kMillisPerDay)) +
                             kMinute,
                         static_cast<SlotId>(rng.Uniform(5)),
                         static_cast<TypeId>(rng.Uniform(5)),
                         rng.Next() | 1, counts)
                    .ok());
  }
  return profile;
}

bool ProfilesEqual(const ProfileData& a, const ProfileData& b) {
  if (a.SliceCount() != b.SliceCount()) return false;
  if (a.LastActionMs() != b.LastActionMs()) return false;
  if (a.write_granularity_ms() != b.write_granularity_ms()) return false;
  auto ia = a.slices().begin();
  auto ib = b.slices().begin();
  for (; ia != a.slices().end(); ++ia, ++ib) {
    if (ia->start_ms() != ib->start_ms() || ia->end_ms() != ib->end_ms()) {
      return false;
    }
    if (ia->slots().size() != ib->slots().size()) return false;
    for (const auto& [slot, set] : ia->slots()) {
      const InstanceSet* other = ib->FindSlot(slot);
      if (other == nullptr) return false;
      if (set.types().size() != other->types().size()) return false;
      for (const auto& [type, stats] : set.types()) {
        const IndexedFeatureStats* other_stats = other->Find(type);
        if (other_stats == nullptr) return false;
        if (stats.size() != other_stats->size()) return false;
        for (size_t i = 0; i < stats.size(); ++i) {
          if (stats.stats()[i].fid != other_stats->stats()[i].fid) {
            return false;
          }
          if (!(stats.stats()[i].counts == other_stats->stats()[i].counts)) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

TEST(ProfileCodecTest, EmptyProfileRoundTrips) {
  ProfileData profile(kMinute);
  std::string encoded;
  EncodeProfile(profile, &encoded);
  ProfileData decoded;
  ASSERT_TRUE(DecodeProfile(encoded, &decoded).ok());
  EXPECT_TRUE(ProfilesEqual(profile, decoded));
}

class ProfileCodecRoundTripTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ProfileCodecRoundTripTest, RandomProfilesRoundTrip) {
  ProfileData profile = RandomProfile(GetParam(), 300);
  std::string encoded;
  EncodeProfile(profile, &encoded);
  ProfileData decoded;
  Status status = DecodeProfile(encoded, &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(ProfilesEqual(profile, decoded));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileCodecRoundTripTest,
                         ::testing::Values(1, 2, 3, 10, 77, 1234));

TEST(ProfileCodecTest, SliceRoundTrips) {
  Slice slice(1000, 2000);
  slice.Add(1, 2, 3, CountVector{1, 2, 3});
  slice.Add(1, 2, 99, CountVector{-4, 5});
  slice.Add(4, 5, 6, CountVector{7});
  std::string encoded;
  EncodeSlice(slice, &encoded);
  Slice decoded;
  ASSERT_TRUE(DecodeSlice(encoded, &decoded).ok());
  EXPECT_EQ(decoded.start_ms(), 1000);
  EXPECT_EQ(decoded.end_ms(), 2000);
  EXPECT_EQ(decoded.FindSlot(1)->Find(2)->Find(3)->counts,
            (CountVector{1, 2, 3}));
  EXPECT_EQ(decoded.FindSlot(1)->Find(2)->Find(99)->counts,
            (CountVector{-4, 5}));
  EXPECT_EQ(decoded.FindSlot(4)->Find(5)->Find(6)->counts[0], 7);
}

TEST(ProfileCodecTest, CompressionShrinksTypicalProfiles) {
  // The compressor either wins by a real margin (at least 1/8 of the raw
  // size) or falls back to a raw-stored frame — a few framing bytes over the
  // raw image — which the serving path decodes zero-copy. Marginal wins are
  // deliberately NOT kept: they'd force a copying decode for a few percent
  // of storage.
  ProfileData random_profile = RandomProfile(5, 1000);
  std::string encoded;
  EncodeProfile(random_profile, &encoded);
  const size_t raw = EncodedProfileSizeUncompressed(random_profile);
  EXPECT_LE(encoded.size(), raw + 16);  // raw-store framing bound
  if (encoded.size() < raw) {
    EXPECT_LE(encoded.size() + raw / 8, raw);  // kept wins are real wins
  }

  // A repetitive profile (constant counts, clustered fids) must strictly
  // shrink — the fallback only engages when the win is marginal.
  ProfileData repetitive(kMinute);
  for (int s = 0; s < 5; ++s) {
    for (int f = 0; f < 1000; ++f) {
      ASSERT_TRUE(repetitive
                      .Add(kMinute + s * kMinute, 1, 1,
                           static_cast<FeatureId>(f % 50 + 1), CountVector{1})
                      .ok());
    }
  }
  std::string repetitive_encoded;
  EncodeProfile(repetitive, &repetitive_encoded);
  EXPECT_LT(repetitive_encoded.size(),
            EncodedProfileSizeUncompressed(repetitive));
}

TEST(ProfileCodecTest, RawStoredFrameDecodesZeroCopy) {
  // Incompressible payloads take the raw-store fallback; the view decode
  // must alias them instead of copying, and report it did.
  Rng rng(17);
  std::string payload(1024, '\0');
  for (auto& c : payload) c = static_cast<char>(rng.Next());
  std::string compressed;
  BlockCompress(payload, &compressed);

  const uint64_t zero_copy_before = ZeroCopyDecodeCount();
  std::string scratch;
  std::string_view view;
  bool aliased = false;
  ASSERT_TRUE(
      BlockUncompressView(compressed, &scratch, &view, &aliased).ok());
  EXPECT_EQ(view, payload);
  EXPECT_TRUE(aliased);
  // Aliased means exactly that: the view points into the compressed buffer.
  EXPECT_GE(view.data(), compressed.data());
  EXPECT_LE(view.data() + view.size(), compressed.data() + compressed.size());
  EXPECT_EQ(ZeroCopyDecodeCount(), zero_copy_before + 1);

  // A compressible payload decompresses into the scratch (owned, however
  // the caller's view is still valid) and does not count as zero-copy.
  std::string repetitive(4096, 'a');
  BlockCompress(repetitive, &compressed);
  ASSERT_TRUE(
      BlockUncompressView(compressed, &scratch, &view, &aliased).ok());
  EXPECT_EQ(view, repetitive);
  EXPECT_FALSE(aliased);
  EXPECT_EQ(ZeroCopyDecodeCount(), zero_copy_before + 1);
}

TEST(ProfileCodecTest, DecodeRejectsGarbage) {
  ProfileData decoded;
  EXPECT_TRUE(DecodeProfile("not a profile", &decoded).IsCorruption());
  EXPECT_TRUE(DecodeProfile("", &decoded).IsCorruption());
}

TEST(ProfileCodecTest, DecodeRejectsTruncation) {
  ProfileData profile = RandomProfile(6, 100);
  std::string encoded;
  EncodeProfile(profile, &encoded);
  ProfileData decoded;
  EXPECT_FALSE(
      DecodeProfile(std::string_view(encoded).substr(0, encoded.size() / 2),
                    &decoded)
          .ok());
}

TEST(ProfileCodecTest, DecodeRejectsWrongMagic) {
  // Compress a valid-looking but wrong-magic payload.
  std::string raw = "XXXXjunk";
  std::string compressed;
  BlockCompress(raw, &compressed);
  ProfileData decoded;
  EXPECT_TRUE(DecodeProfile(compressed, &decoded).IsCorruption());
}

TEST(ProfileCodecTest, SliceMetaRoundTrips) {
  SliceMeta meta;
  meta.write_granularity_ms = 5000;
  meta.last_action_ms = 123'456'789;
  for (uint64_t i = 0; i < 10; ++i) {
    meta.entries.push_back(SliceMetaEntry{
        i * 1000, static_cast<TimestampMs>(i * 1000),
        static_cast<TimestampMs>((i + 1) * 1000)});
  }
  std::string encoded;
  EncodeSliceMeta(meta, &encoded);
  SliceMeta decoded;
  ASSERT_TRUE(DecodeSliceMeta(encoded, &decoded).ok());
  EXPECT_EQ(decoded.write_granularity_ms, 5000);
  EXPECT_EQ(decoded.last_action_ms, 123'456'789);
  ASSERT_EQ(decoded.entries.size(), 10u);
  EXPECT_EQ(decoded.entries[3].slice_key, 3000u);
  EXPECT_EQ(decoded.entries[3].end_ms, 4000);
}

TEST(ProfileCodecTest, SliceMetaRejectsGarbage) {
  SliceMeta meta;
  EXPECT_TRUE(DecodeSliceMeta("zzz", &meta).IsCorruption());
}

TEST(ProfileCodecTest, PaperScaleProfileSize) {
  // Sanity-check the paper's claim territory: a profile with ~62 slices of
  // ~small contents serializes to tens of KB uncompressed and less
  // compressed.
  Rng rng(9);
  ProfileData profile(kMinute);
  const TimestampMs base = 100 * kMillisPerDay;
  for (int s = 0; s < 62; ++s) {
    for (int f = 0; f < 20; ++f) {
      ASSERT_TRUE(profile
                      .Add(base + s * kMinute,
                           static_cast<SlotId>(f % 4), 1,
                           rng.Next() | 1, CountVector{1, 0, 1, 0})
                      .ok());
    }
  }
  EXPECT_EQ(profile.SliceCount(), 62u);
  std::string encoded;
  EncodeProfile(profile, &encoded);
  EXPECT_LT(encoded.size(), 60'000u);
  EXPECT_GT(encoded.size(), 1'000u);
}

}  // namespace
}  // namespace ips
