#include "server/overload.h"

#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "common/call_context.h"
#include "common/clock.h"
#include "common/metrics.h"

namespace ips {
namespace {

class OverloadControllerTest : public ::testing::Test {
 protected:
  // Heap-built: the controller owns mutexes and is intentionally pinned.
  std::unique_ptr<OverloadController> Make(OverloadControllerOptions options) {
    return std::make_unique<OverloadController>(options, &clock_, &metrics_);
  }

  ManualClock clock_;
  MetricsRegistry metrics_;
};

TEST_F(OverloadControllerTest, TierNamesRoundTrip) {
  for (RequestTier tier :
       {RequestTier::kCritical, RequestTier::kRead, RequestTier::kWrite,
        RequestTier::kBulk}) {
    auto parsed = ParseRequestTier(RequestTierName(tier));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, tier);
  }
  EXPECT_FALSE(ParseRequestTier("turbo").has_value());
  EXPECT_FALSE(ParseRequestTier("").has_value());
}

TEST_F(OverloadControllerTest, CallerTierDefaultsAndOverrides) {
  auto ctrl = Make({});
  // Unmarked callers split by direction.
  EXPECT_EQ(ctrl->TierFor("ranker", /*is_write=*/false), RequestTier::kRead);
  EXPECT_EQ(ctrl->TierFor("ingest", /*is_write=*/true), RequestTier::kWrite);
  // An explicit mark wins for both directions.
  ctrl->SetCallerTier("backfill", RequestTier::kBulk);
  EXPECT_EQ(ctrl->TierFor("backfill", false), RequestTier::kBulk);
  EXPECT_EQ(ctrl->TierFor("backfill", true), RequestTier::kBulk);
  ctrl->SetCallerTier("checkout", RequestTier::kCritical);
  EXPECT_EQ(ctrl->TierFor("checkout", false), RequestTier::kCritical);
  // Removal restores the defaults.
  ctrl->RemoveCallerTier("backfill");
  EXPECT_EQ(ctrl->TierFor("backfill", false), RequestTier::kRead);
}

TEST_F(OverloadControllerTest, DisabledAdmitsEverything) {
  OverloadControllerOptions options;
  options.enabled = false;
  auto ctrl = Make(options);
  ctrl->SetLevelOverride(4);
  EXPECT_TRUE(ctrl->Admit(RequestTier::kBulk, 100.0,
                          CallContext::WithDeadline(1), /*now_ms=*/1000)
                  .ok());
}

TEST_F(OverloadControllerTest, HealthyInstanceAdmitsAllTiers) {
  auto ctrl = Make({});
  const CallContext ctx;  // no deadline
  for (RequestTier tier :
       {RequestTier::kCritical, RequestTier::kRead, RequestTier::kWrite,
        RequestTier::kBulk}) {
    EXPECT_TRUE(ctrl->Admit(tier, 1.0, ctx, clock_.NowMs()).ok());
  }
}

TEST_F(OverloadControllerTest, BrownOutLadderShedsCheapestFirst) {
  auto ctrl = Make({});
  const CallContext ctx;  // deadline-less: isolates the ladder
  struct LevelCase {
    int level;
    bool bulk, write, read, critical;  // true = admitted
  };
  // At level L every tier numbered > 4 - L sheds.
  const LevelCase cases[] = {
      {0, true, true, true, true},   {1, false, true, true, true},
      {2, false, false, true, true}, {3, false, false, false, true},
      {4, false, false, false, false},
  };
  for (const auto& c : cases) {
    ctrl->SetLevelOverride(c.level);
    EXPECT_EQ(ctrl->Admit(RequestTier::kBulk, 1.0, ctx, 0).ok(), c.bulk)
        << "level " << c.level;
    EXPECT_EQ(ctrl->Admit(RequestTier::kWrite, 1.0, ctx, 0).ok(), c.write)
        << "level " << c.level;
    EXPECT_EQ(ctrl->Admit(RequestTier::kRead, 1.0, ctx, 0).ok(), c.read)
        << "level " << c.level;
    EXPECT_EQ(ctrl->Admit(RequestTier::kCritical, 1.0, ctx, 0).ok(), c.critical)
        << "level " << c.level;
  }
  EXPECT_GT(metrics_.GetCounter("admission.shed_brownout")->Value(), 0);
}

TEST_F(OverloadControllerTest, BrownOutShedCarriesRetryAfter) {
  auto ctrl = Make({});
  ctrl->SetLevelOverride(3);
  Status s = ctrl->Admit(RequestTier::kRead, 1.0, CallContext{}, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsThrottled());
  EXPECT_TRUE(s.has_retry_after());
  EXPECT_GE(s.retry_after_ms(), ctrl->options().min_retry_after_ms);
}

TEST_F(OverloadControllerTest, LevelTracksQueueEstimate) {
  OverloadControllerOptions options;
  options.target_queue_us = 1'000;
  options.ewma_alpha = 1.0;  // estimate == newest sample, deterministic
  auto ctrl = Make(options);
  EXPECT_EQ(ctrl->Level(), 0);
  ctrl->RecordQueueSample(1'500);  // > 1x target: shed bulk
  EXPECT_EQ(ctrl->Level(), 1);
  ctrl->RecordQueueSample(2'500);  // > 2x: +writes
  EXPECT_EQ(ctrl->Level(), 2);
  ctrl->RecordQueueSample(5'000);  // > 4x: +reads
  EXPECT_EQ(ctrl->Level(), 3);
  ctrl->RecordQueueSample(9'000);  // > 8x: everything sheds
  EXPECT_EQ(ctrl->Level(), 4);
}

TEST_F(OverloadControllerTest, DeadlineDerivedShed) {
  OverloadControllerOptions options;
  options.target_queue_us = 50'000;  // ladder stays quiet; isolate deadlines
  options.ewma_alpha = 1.0;
  auto ctrl = Make(options);
  ctrl->RecordServiceSample(/*service_us=*/2'000, /*cost=*/1.0);
  ctrl->RecordQueueSample(10'000);  // standing queue ~10ms

  clock_.SetMs(1'000);
  // 5ms of headroom cannot cover 10ms queue + 2ms service: dead on arrival.
  Status shed = ctrl->Admit(RequestTier::kRead, 1.0,
                           CallContext::WithDeadline(1'005), clock_.NowMs());
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.IsThrottled());
  EXPECT_TRUE(shed.has_retry_after());
  EXPECT_EQ(metrics_.GetCounter("admission.shed_deadline")->Value(), 1);

  // 100ms of headroom fits comfortably.
  EXPECT_TRUE(ctrl->Admit(RequestTier::kRead, 1.0,
                          CallContext::WithDeadline(1'100), clock_.NowMs())
                  .ok());

  // Batch cost scales the needed service time: 60 items * 2ms don't fit in
  // 100ms behind a 10ms queue.
  EXPECT_FALSE(ctrl->Admit(RequestTier::kRead, 60.0,
                           CallContext::WithDeadline(1'100), clock_.NowMs())
                   .ok());

  // Deadline-less requests never shed on the deadline rule.
  EXPECT_TRUE(ctrl->Admit(RequestTier::kRead, 60.0, CallContext{},
                         clock_.NowMs())
                  .ok());
}

TEST_F(OverloadControllerTest, DepthEstimateReactsBeforeAnySampleDrains) {
  OverloadControllerOptions options;
  options.workers = 4;
  options.default_service_us = 2'000;
  auto ctrl = Make(options);
  EXPECT_EQ(ctrl->EstimateQueueUs(), 0);
  // 8 queued requests over 4 workers at 2ms each ~= 4ms of queue, with no
  // wait sample recorded yet (Little's law, not the EWMA).
  for (int i = 0; i < 8; ++i) ctrl->OnEnqueue();
  EXPECT_EQ(ctrl->EstimateQueueUs(), 4'000);
  for (int i = 0; i < 8; ++i) ctrl->OnDequeue(/*waited_us=*/0);
  EXPECT_EQ(ctrl->EstimateQueueUs(), 0);
}

TEST_F(OverloadControllerTest, EstimateDecaysAfterBurstEnds) {
  OverloadControllerOptions options;
  options.ewma_alpha = 1.0;
  options.estimate_half_life_ms = 1;  // fast decay so the test stays quick
  auto ctrl = Make(options);
  ctrl->RecordQueueSample(100'000);
  EXPECT_GT(ctrl->EstimateQueueUs(), 50'000);
  // ~30 half-lives later the burst's estimate is gone without any new
  // samples (the decay runs on real monotonic time).
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_LT(ctrl->EstimateQueueUs(), 1'000);
  EXPECT_EQ(ctrl->Level(), 0);
}

TEST_F(OverloadControllerTest, RetryAfterHintClamped) {
  OverloadControllerOptions options;
  options.target_queue_us = 1'000;
  options.min_retry_after_ms = 2;
  options.max_retry_after_ms = 500;
  auto ctrl = Make(options);
  // At target: no excess, clamped up to the minimum.
  EXPECT_EQ(ctrl->RetryAfterMsForEstimate(1'000), 2);
  // 26ms of excess queue: hint = drain time.
  EXPECT_EQ(ctrl->RetryAfterMsForEstimate(27'000), 26);
  // Excess beyond the cap: clamped down.
  EXPECT_EQ(ctrl->RetryAfterMsForEstimate(10'000'000), 500);
}

TEST_F(OverloadControllerTest, ServiceEwmaNormalizesPerItem) {
  OverloadControllerOptions options;
  options.workers = 1;
  options.ewma_alpha = 1.0;
  auto ctrl = Make(options);
  // 64 items served in 32ms = 500us/item; the depth estimate uses the
  // per-item figure, not the raw batch duration.
  ctrl->RecordServiceSample(32'000, /*cost=*/64.0);
  ctrl->OnEnqueue();
  EXPECT_EQ(ctrl->EstimateQueueUs(), 500);
  ctrl->OnDequeue(0);
}

}  // namespace
}  // namespace ips
