#include "common/config.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"

namespace ips {
namespace {

TEST(ConfigParseTest, ParsesScalars) {
  auto v = ParseConfig("42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 42);

  v = ParseConfig("-3.5");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), -3.5);

  v = ParseConfig("true");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->AsBool());

  v = ParseConfig("\"hello\\nworld\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "hello\nworld");

  v = ParseConfig("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ConfigParseTest, ParsesListingTwoTimeDimensionConfig) {
  // The exact shape of the paper's Listing 2/3 config.
  const char* doc = R"({
    "time_dimension": {
      "1s": ["0s", "1m"],
      "1m": ["1m", "1h"],
      "1h": ["1h", "24h"],
      "1d": ["24h", "30d"],
      "30d": ["30d", "365d"]
    }
  })";
  auto v = ParseConfig(doc);
  ASSERT_TRUE(v.ok());
  const ConfigValue& dims = v->Get("time_dimension");
  ASSERT_TRUE(dims.is_object());
  EXPECT_EQ(dims.size(), 5u);
  ASSERT_EQ(dims.Get("1h").size(), 2u);
  EXPECT_EQ(dims.Get("1h").items()[0].AsString(), "1h");
  EXPECT_EQ(dims.Get("1h").items()[1].AsString(), "24h");
}

TEST(ConfigParseTest, NestedArraysAndObjects) {
  auto v = ParseConfig(R"({"a": [1, [2, 3], {"b": 4}], "c": {}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Get("a").items()[1].items()[1].AsInt(), 3);
  EXPECT_EQ(v->Get("a").items()[2].Get("b").AsInt(), 4);
  EXPECT_TRUE(v->Get("c").is_object());
}

TEST(ConfigParseTest, DumpRoundTrips) {
  const std::string doc =
      R"({"arr":[1,2.5,"x"],"flag":true,"nested":{"k":"v"},"n":null})";
  auto v = ParseConfig(doc);
  ASSERT_TRUE(v.ok());
  auto round = ParseConfig(v->Dump());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->Dump(), v->Dump());
}

class ConfigRejectTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ConfigRejectTest, MalformedInputRejected) {
  auto v = ParseConfig(GetParam());
  EXPECT_FALSE(v.ok()) << GetParam();
  EXPECT_TRUE(v.status().IsInvalidArgument());
}

INSTANTIATE_TEST_SUITE_P(
    BadDocs, ConfigRejectTest,
    ::testing::Values("", "{", "}", "[1,", "{\"a\":}", "{\"a\" 1}",
                      "tru", "\"unterminated", "{\"a\":1} trailing",
                      "[1 2]", "{1: 2}", "nul", "--5", "1.2.3"));

struct DurationCase {
  const char* text;
  int64_t expected_ms;
};

class DurationTest : public ::testing::TestWithParam<DurationCase> {};

TEST_P(DurationTest, Parses) {
  auto ms = ParseDurationMs(GetParam().text);
  ASSERT_TRUE(ms.ok()) << GetParam().text;
  EXPECT_EQ(*ms, GetParam().expected_ms);
}

INSTANTIATE_TEST_SUITE_P(
    Durations, DurationTest,
    ::testing::Values(DurationCase{"0s", 0}, DurationCase{"500ms", 500},
                      DurationCase{"1s", 1000}, DurationCase{"10", 10'000},
                      DurationCase{"1m", 60'000},
                      DurationCase{"10m", 600'000},
                      DurationCase{"1h", 3'600'000},
                      DurationCase{"24h", 86'400'000},
                      DurationCase{"1d", 86'400'000},
                      DurationCase{"30d", 30LL * 86'400'000},
                      DurationCase{"365d", 365LL * 86'400'000}));

TEST(DurationTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDurationMs("").ok());
  EXPECT_FALSE(ParseDurationMs("m").ok());
  EXPECT_FALSE(ParseDurationMs("5x").ok());
  EXPECT_FALSE(ParseDurationMs("-").ok());
}

TEST(DurationTest, FormatPicksCompactUnit) {
  EXPECT_EQ(FormatDurationMs(0), "0ms");
  EXPECT_EQ(FormatDurationMs(500), "500ms");
  EXPECT_EQ(FormatDurationMs(1000), "1s");
  EXPECT_EQ(FormatDurationMs(90'000), "90s");
  EXPECT_EQ(FormatDurationMs(kMillisPerHour * 2), "2h");
  EXPECT_EQ(FormatDurationMs(kMillisPerDay * 30), "30d");
}

TEST(DurationTest, FormatParseRoundTrip) {
  for (int64_t ms : {int64_t{1}, int64_t{999}, int64_t{1000},
                     kMillisPerMinute, kMillisPerHour, kMillisPerDay,
                     7 * kMillisPerDay}) {
    auto parsed = ParseDurationMs(FormatDurationMs(ms));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, ms);
  }
}

TEST(ConfigRegistryTest, SubscribersSeePublishes) {
  ConfigRegistry registry;
  int calls = 0;
  int64_t last = 0;
  registry.Subscribe("key", [&](const ConfigValue& v) {
    ++calls;
    last = v.AsInt();
  });
  EXPECT_EQ(calls, 0);  // nothing published yet
  registry.Publish("key", ConfigValue::Int(5));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(last, 5);
  registry.Publish("key", ConfigValue::Int(9));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(last, 9);
}

TEST(ConfigRegistryTest, LateSubscriberGetsCurrentValue) {
  ConfigRegistry registry;
  registry.Publish("key", ConfigValue::Int(1));
  int64_t seen = 0;
  registry.Subscribe("key", [&](const ConfigValue& v) { seen = v.AsInt(); });
  EXPECT_EQ(seen, 1);
}

TEST(ConfigRegistryTest, MalformedJsonRejectedOldValueStays) {
  ConfigRegistry registry;
  ASSERT_TRUE(registry.PublishJson("key", R"({"v": 1})").ok());
  EXPECT_FALSE(registry.PublishJson("key", "{broken").ok());
  EXPECT_EQ(registry.Current("key").Get("v").AsInt(), 1);
}

TEST(ConfigRegistryTest, UnsubscribeStopsDelivery) {
  ConfigRegistry registry;
  int calls = 0;
  const int64_t id =
      registry.Subscribe("key", [&](const ConfigValue&) { ++calls; });
  registry.Publish("key", ConfigValue::Int(1));
  EXPECT_EQ(calls, 1);
  registry.Unsubscribe(id);
  registry.Publish("key", ConfigValue::Int(2));
  EXPECT_EQ(calls, 1);
}

TEST(ConfigRegistryTest, KeysAreIndependent) {
  ConfigRegistry registry;
  int a_calls = 0, b_calls = 0;
  registry.Subscribe("a", [&](const ConfigValue&) { ++a_calls; });
  registry.Subscribe("b", [&](const ConfigValue&) { ++b_calls; });
  registry.Publish("a", ConfigValue::Int(1));
  EXPECT_EQ(a_calls, 1);
  EXPECT_EQ(b_calls, 0);
}

}  // namespace
}  // namespace ips
